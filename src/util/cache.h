#pragma once
// Content-addressed memoization primitives (cesm::util).
//
// The suite's phase profile shows most of its wall time is *recomputation
// of variant-invariant work*: every bench tool, suite repetition, and
// codec variant re-synthesizes the identical perturbation ensemble and
// re-derives the same EnsembleStats products. The paper's methodology
// (§4, eqs. 6-11) factors the ensemble-side distributions as fixed per
// variable — independent of the compressor under test — so those products
// are perfect memoization targets. This header provides the generic
// machinery; core/ensemble_cache.{h,cpp} applies it to the domain.
//
//   * KeyHasher    — stable incremental 64-bit content hash (FNV-1a with a
//                    SplitMix finalizer); field-order and string-length
//                    sensitive, identical across runs and platforms;
//   * LruCache<T>  — byte-budgeted in-memory tier holding shared_ptr
//                    values, strict LRU eviction, thread-safe;
//   * DiskCache    — optional on-disk tier: one versioned, checksummed
//                    file per key. Entries are validated on read and a
//                    stale, truncated or corrupt entry is *never trusted*
//                    — it reads as a miss (and is deleted) so the caller
//                    regenerates it. Writes are temp-file + rename so a
//                    crashed writer cannot leave a half entry behind.
//
// Observability: every tier movement feeds cesm::trace counters
// ("cache.hit", "cache.miss", "cache.evict", "cache.bytes",
// "cache.disk_hit", "cache.disk_corrupt", ...) so --profile reports show
// memoization effectiveness next to the timing tree. The disk read path
// carries the CESM_FAILPOINT site "cache.disk_read", making the
// corruption-recovery path mechanically testable.

#include <cstdint>
#include <filesystem>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/trace.h"

namespace cesm::util {

/// FNV-1a 64-bit over a byte range; the checksum of disk-cache entries.
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> data,
                                    std::uint64_t seed = 0xcbf29ce484222325ull);

/// Stable incremental content hash for cache keys. Feed every input that
/// determines the cached value (specs, seeds, shapes, format versions);
/// the digest is a pure function of the byte sequence fed in, identical
/// across processes, platforms and runs. Strings are length-prefixed so
/// ("ab","c") and ("a","bc") hash differently.
class KeyHasher {
 public:
  KeyHasher& bytes(std::span<const std::uint8_t> data) {
    h_ = fnv1a64(data, h_);
    return *this;
  }
  KeyHasher& u64(std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return bytes({b, 8});
  }
  KeyHasher& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  KeyHasher& f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }
  KeyHasher& boolean(bool v) { return u64(v ? 1 : 0); }
  KeyHasher& str(std::string_view s) {
    u64(s.size());
    return bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  /// SplitMix-finalized digest: a 1-bit input change flips ~half the
  /// output bits, so truncated prefixes of the key still discriminate.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// Snapshot of one cache's tier-movement counters.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t oversize = 0;       ///< inserts bypassed: value > whole budget
  std::uint64_t entries = 0;        ///< currently resident
  std::uint64_t resident_bytes = 0; ///< currently resident cost
  std::uint64_t inserted_bytes = 0; ///< cumulative cost of every insert
};

/// Byte-budgeted in-memory LRU tier. Values are shared_ptr<const T> so a
/// cached object stays alive for callers that hold it across an eviction.
/// Thread-safe; get() refreshes recency. A single value larger than the
/// whole budget (a full-grid EnsembleStats snapshot, say) is not admitted
/// at all: caching it would evict everything else and still leave the
/// tier thrashing, so the insert is bypassed and counted
/// ("cache.oversize") — the caller keeps its shared_ptr and nothing else
/// is lost.
template <typename T>
class LruCache {
 public:
  explicit LruCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  [[nodiscard]] std::shared_ptr<const T> get(std::uint64_t key) {
    std::lock_guard lock(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      trace::counter_add("cache.miss", 1);
      return nullptr;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++stats_.hits;
    trace::counter_add("cache.hit", 1);
    return it->second->value;
  }

  /// Insert under `key` with an explicit byte cost. A concurrent builder
  /// that lost the race is dropped (first insert wins; cached builds are
  /// deterministic so the duplicates are identical anyway).
  void put(std::uint64_t key, std::shared_ptr<const T> value, std::size_t cost_bytes) {
    std::lock_guard lock(mu_);
    if (cost_bytes > max_bytes_) {
      ++stats_.oversize;
      trace::counter_add("cache.oversize", 1);
      return;
    }
    if (index_.find(key) != index_.end()) return;
    order_.push_front(Entry{key, std::move(value), cost_bytes});
    index_[key] = order_.begin();
    ++stats_.entries;
    stats_.resident_bytes += cost_bytes;
    stats_.inserted_bytes += cost_bytes;
    trace::counter_add("cache.bytes", cost_bytes);
    while (stats_.resident_bytes > max_bytes_ && order_.size() > 1) {
      const Entry& victim = order_.back();
      stats_.resident_bytes -= victim.cost_bytes;
      --stats_.entries;
      ++stats_.evictions;
      trace::counter_add("cache.evict", 1);
      index_.erase(victim.key);
      order_.pop_back();
    }
  }

  void clear() {
    std::lock_guard lock(mu_);
    order_.clear();
    index_.clear();
    stats_.entries = 0;
    stats_.resident_bytes = 0;
  }

  [[nodiscard]] CacheStats stats() const {
    std::lock_guard lock(mu_);
    return stats_;
  }

  [[nodiscard]] std::size_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const T> value;
    std::size_t cost_bytes = 0;
  };

  std::size_t max_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> order_;  // front = most recent
  std::map<std::uint64_t, typename std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

/// On-disk cache tier: one file per key under `dir`, named
/// "<prefix>-<16-hex-key>.cesmc". Every entry carries a versioned header
/// (magic, format version, key echo, payload length) and an FNV-1a
/// checksum of the payload; read() validates all of it and treats any
/// mismatch — truncation, bit rot, a stale format, a hash collision on
/// the file name — as a miss, deleting the bad entry so the regenerated
/// value replaces it. Corrupt entries are NEVER returned to the caller.
class DiskCache {
 public:
  static constexpr std::uint32_t kMagic = 0x43534543;  // "CESC"
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Creates `dir` (and parents) on first use. Throws IoError only when
  /// the directory cannot be created; per-entry I/O failures afterwards
  /// are soft (read -> miss, write -> dropped) because a cache must never
  /// take down the computation it accelerates. A nonzero
  /// `max_payload_bytes` (usually the same budget as the memory tier)
  /// makes write() bypass payloads larger than the budget, counted under
  /// "cache.oversize" — one full-grid snapshot must not fill the disk.
  /// A nonzero `max_total_bytes` bounds the whole directory: every write
  /// triggers an oldest-first eviction pass back under the budget
  /// (evict_directory_to_budget), protecting the entry just written.
  DiskCache(std::filesystem::path dir, std::string prefix,
            std::size_t max_payload_bytes = 0, std::uint64_t max_total_bytes = 0);

  /// The validated payload, or nullopt when the entry is absent, corrupt,
  /// truncated, or unreadable. Fires the "cache.disk_read" failpoint; an
  /// injected fault travels the same recovery path as real corruption.
  [[nodiscard]] std::optional<Bytes> read(std::uint64_t key) const;

  /// Atomically (temp + rename) persist `payload` under `key`. Best
  /// effort: an I/O failure is counted ("cache.disk_write_fail") and
  /// swallowed.
  void write(std::uint64_t key, std::span<const std::uint8_t> payload) const;

  /// Where `key`'s entry lives (exists or not) — used by corruption tests.
  [[nodiscard]] std::filesystem::path entry_path(std::uint64_t key) const;

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path dir_;
  std::string prefix_;
  std::size_t max_payload_bytes_ = 0;   ///< 0 = unlimited per entry
  std::uint64_t max_total_bytes_ = 0;   ///< 0 = unlimited directory
};

/// What evict_directory_to_budget removed.
struct EvictionResult {
  std::size_t files_removed = 0;
  std::uint64_t bytes_removed = 0;
};

/// Shrink a cache-like directory to `max_total_bytes`: among regular files
/// whose name ends in `extension`, the oldest (by mtime) are deleted first
/// until the total fits. Paths listed in `protect` are never removed (the
/// entry the caller is actively using). Best effort — unreadable or
/// vanished files are skipped, never fatal: eviction serves the budget, it
/// must not take down the computation. Counted under "cache.dir_evict".
/// Shared by the DiskCache tier and the reusable spill store.
EvictionResult evict_directory_to_budget(const std::filesystem::path& dir,
                                         std::string_view extension,
                                         std::uint64_t max_total_bytes,
                                         std::span<const std::string> protect = {});

/// Process-wide cache configuration from the environment:
///   CESM_CACHE          "off"/"0" disables memoization entirely;
///   CESM_CACHE_MB       in-memory budget in MiB (default 256);
///   CESM_CACHE_DIR      enables the on-disk tier rooted at this directory;
///   CESM_CACHE_DISK_MB  total byte budget for the disk tier (0 = no
///                       limit): after each write the directory is
///                       evicted oldest-first back under the budget.
struct CacheConfig {
  bool enabled = true;
  std::size_t max_bytes = 256ull << 20;
  std::string disk_dir;               ///< empty = no disk tier
  std::uint64_t disk_max_bytes = 0;   ///< 0 = unlimited disk tier

  [[nodiscard]] static CacheConfig from_env();
};

}  // namespace cesm::util
