#include "util/scheduler.h"

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <thread>

#include "util/env.h"
#include "util/failpoint.h"
#include "util/trace.h"

namespace cesm {

namespace {

// Thread-identity of a worker: which scheduler owns the calling thread
// (compared by Impl address) and its worker slot. Non-worker threads keep
// the null default and use the external stats slot + injection queue.
thread_local const void* t_owner = nullptr;
thread_local std::size_t t_worker_index = 0;

// Depth of nested help-first joins on this thread. Each foreign task
// executed inside a TaskGroup::wait can itself wait and help, growing the
// stack; past kMaxHelpDepth a waiter only runs tasks from its own deque
// (descendants of the current task) and otherwise parks.
thread_local int t_help_depth = 0;
constexpr int kMaxHelpDepth = 64;

// A parked at-cap waiter escapes (helps anyway, accepting stack growth)
// after this many consecutive empty timeouts, so "every thread is at the
// help cap" can never deadlock with runnable tasks still queued.
constexpr int kCapEscapeTimeouts = 64;

constexpr auto kWorkerParkTimeout = std::chrono::microseconds(500);
constexpr auto kWaiterParkTimeout = std::chrono::microseconds(200);

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Ceiling on explicitly requested worker threads: far above any real
// machine, low enough that a fat-fingered CESM_THREADS cannot make the
// pool constructor attempt a million std::threads.
constexpr std::size_t kMaxEnvThreads = 4096;

std::size_t resolve_env_threads() {
  // env_u64 warns on stderr and returns nullopt for "-1", "abc", "4x" —
  // the old strtoll path ignored those silently, so a typo'd CESM_THREADS
  // degraded to the default with no hint why.
  const auto v = util::env_u64("CESM_THREADS");
  if (!v.has_value()) return 0;  // unset or malformed (already warned)
  if (*v == 0 || *v > kMaxEnvThreads) {
    std::fprintf(stderr, "CESM_THREADS ignored: %llu outside [1, %zu]\n",
                 static_cast<unsigned long long>(*v), kMaxEnvThreads);
    return 0;
  }
  return static_cast<std::size_t>(*v);
}

std::atomic<std::size_t> g_default_threads{0};
std::atomic<bool> g_global_built{false};
std::atomic<Scheduler*> g_override{nullptr};

/// Chase-Lev-style work-stealing deque with a fixed power-of-two capacity.
/// The owning worker pushes and pops at the bottom (LIFO keeps nested
/// subtasks cache-hot); thieves CAS the top (FIFO steals take the oldest,
/// largest-granularity work). All top_/bottom_ accesses are seq_cst rather
/// than the classic fence-based orderings: ThreadSanitizer does not model
/// std::atomic_thread_fence, and at our chunk granularity the seq_cst cost
/// is unmeasurable. A full deque rejects the push and the scheduler falls
/// back to the mutex-guarded injection queue, so capacity never limits
/// correctness and slots never need reclamation or growth.
class Deque {
 public:
  static constexpr std::size_t kCapacity = 4096;
  static constexpr std::size_t kMask = kCapacity - 1;

  /// Owner only. False when full.
  bool push(Task* task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (b - t >= static_cast<std::int64_t>(kCapacity)) return false;
    slots_[static_cast<std::size_t>(b) & kMask].store(task, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner only. Null when empty (or lost the race for the last element).
  Task* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty: restore bottom
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return nullptr;
    }
    Task* task = slots_[static_cast<std::size_t>(b) & kMask].load(std::memory_order_relaxed);
    if (t == b) {  // last element: race thieves for it
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
        task = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_seq_cst);
    }
    return task;
  }

  /// Any thread. Null when empty or on CAS contention (callers just move
  /// to the next victim).
  Task* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Task* task = slots_[static_cast<std::size_t>(t) & kMask].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      return nullptr;
    }
    return task;
  }

  [[nodiscard]] bool maybe_nonempty() const {
    return bottom_.load(std::memory_order_seq_cst) > top_.load(std::memory_order_seq_cst);
  }

 private:
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::array<std::atomic<Task*>, kCapacity> slots_{};
};

/// Per-source execution counters, cache-line padded so workers never
/// false-share. Always on: relaxed increments are cheap next to the
/// chunk-sized tasks they count.
struct alignas(64) SourceCounters {
  std::atomic<std::uint64_t> spawned{0};
  std::atomic<std::uint64_t> popped{0};
  std::atomic<std::uint64_t> stolen{0};
  std::atomic<std::uint64_t> injected{0};
  std::atomic<std::uint64_t> helped{0};
  std::atomic<std::uint64_t> inline_chunks{0};
  std::atomic<std::uint64_t> busy_ns{0};
};

struct alignas(64) WorkerSlot {
  Deque deque;
  SourceCounters counters;
};

}  // namespace

struct Scheduler::Impl {
  std::vector<std::unique_ptr<WorkerSlot>> workers;
  SourceCounters external;  // shared by all non-worker threads

  std::mutex inject_mu;
  std::deque<Task*> inject;

  // Idle-worker parking. Missed notifies are bounded by the wait_for
  // timeout, never a deadlock.
  std::mutex park_mu;
  std::condition_variable park_cv;
  std::atomic<int> idle{0};

  // TaskGroup waiter parking. Lives on the scheduler — never on a group —
  // so a task's final finish_one() can signal completion without touching
  // group memory that the woken waiter may already have destroyed.
  std::mutex wait_mu;
  std::condition_variable wait_cv;

  std::atomic<bool> stop{false};
  std::atomic<bool> serialize_nested{false};
  std::vector<std::thread> threads;

  [[nodiscard]] SourceCounters& counters_here() {
    if (t_owner == this) return workers[t_worker_index]->counters;
    return external;
  }

  [[nodiscard]] bool any_queued_work() {
    for (const auto& w : workers) {
      if (w->deque.maybe_nonempty()) return true;
    }
    std::lock_guard lk(inject_mu);
    return !inject.empty();
  }

  Task* pop_injection() {
    std::lock_guard lk(inject_mu);
    if (inject.empty()) return nullptr;
    Task* task = inject.front();
    inject.pop_front();
    return task;
  }

  /// Steal scan over every worker deque, starting after `self_index`
  /// (SIZE_MAX for external threads). Two rounds absorb transient CAS
  /// contention before the caller decides to park.
  Task* try_steal(std::size_t self_index) {
    const std::size_t n = workers.size();
    const std::size_t start = self_index == SIZE_MAX ? 0 : self_index + 1;
    for (int round = 0; round < 2; ++round) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t victim = (start + i) % n;
        if (victim == self_index) continue;
        if (Task* task = workers[victim]->deque.steal()) return task;
      }
    }
    return nullptr;
  }

  void worker_main(std::size_t index) {
    t_owner = this;
    t_worker_index = index;
    WorkerSlot& self = *workers[index];
    while (!stop.load(std::memory_order_acquire)) {
      Task* task = self.deque.pop();
      if (task != nullptr) {
        self.counters.popped.fetch_add(1, std::memory_order_relaxed);
      } else if ((task = pop_injection()) != nullptr) {
        self.counters.injected.fetch_add(1, std::memory_order_relaxed);
      } else if ((task = try_steal(index)) != nullptr) {
        self.counters.stolen.fetch_add(1, std::memory_order_relaxed);
      }
      if (task != nullptr) {
        run_task(task, /*from_wait=*/false);
        continue;
      }
      std::unique_lock lk(park_mu);
      idle.fetch_add(1, std::memory_order_seq_cst);
      if (!stop.load(std::memory_order_acquire) && !any_queued_work()) {
        park_cv.wait_for(lk, kWorkerParkTimeout);
      }
      idle.fetch_sub(1, std::memory_order_relaxed);
    }
    t_owner = nullptr;
  }

  /// Execute one task under its group's exception capture and account its
  /// wall time to the calling thread's counter slot.
  void run_task(Task* task, bool from_wait) {
    SourceCounters& c = counters_here();
    if (from_wait) c.helped.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t t0 = now_ns();
    TaskGroup* group = task->group;
    try {
      // Inside the capture block: an injected fault takes the exact path a
      // real task-body exception takes (captured, rethrown at wait()).
      CESM_FAILPOINT("sched.task");
      task->invoke(task);
    } catch (...) {
      group->capture(std::current_exception());
    }
    c.busy_ns.fetch_add(now_ns() - t0, std::memory_order_relaxed);
    group->finish_one();
  }
};

Scheduler::Scheduler(std::size_t threads) : impl_(std::make_unique<Impl>()) {
  if (threads == 0) threads = g_default_threads.load(std::memory_order_relaxed);
  if (threads == 0) threads = resolve_env_threads();
  if (threads == 0) threads = std::thread::hardware_concurrency();
  threads = std::clamp<std::size_t>(threads, 1, 1024);
  impl_->workers.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    impl_->workers.push_back(std::make_unique<WorkerSlot>());
  }
  // A 1-worker scheduler runs everything on the calling thread (parallel_for
  // short-circuits), so skip the lone worker thread too: it would only spin.
  if (threads > 1) {
    impl_->threads.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      impl_->threads.emplace_back([this, i] { impl_->worker_main(i); });
    }
  }
}

Scheduler::~Scheduler() {
  impl_->stop.store(true, std::memory_order_release);
  {
    std::lock_guard lk(impl_->park_mu);
  }
  impl_->park_cv.notify_all();
  for (std::thread& t : impl_->threads) t.join();
}

std::size_t Scheduler::thread_count() const { return impl_->workers.size(); }

bool Scheduler::on_worker_thread() const { return t_owner == impl_.get(); }

void Scheduler::set_serialize_nested(bool on) {
  impl_->serialize_nested.store(on, std::memory_order_relaxed);
}

bool Scheduler::serialize_nested() const {
  return impl_->serialize_nested.load(std::memory_order_relaxed);
}

void Scheduler::submit(Task* task) {
  Impl& im = *impl_;
  bool queued = false;
  if (t_owner == impl_.get()) {
    queued = im.workers[t_worker_index]->deque.push(task);
  }
  if (!queued) {
    std::lock_guard lk(im.inject_mu);
    im.inject.push_back(task);
  }
  im.counters_here().spawned.fetch_add(1, std::memory_order_relaxed);
  if (im.idle.load(std::memory_order_seq_cst) > 0) im.park_cv.notify_one();
}

Task* Scheduler::find_task(bool is_worker, std::size_t worker_index) {
  Impl& im = *impl_;
  SourceCounters& c = im.counters_here();
  if (is_worker) {
    if (Task* task = im.workers[worker_index]->deque.pop()) {
      c.popped.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  if (t_help_depth >= kMaxHelpDepth) return nullptr;  // own deque only at cap
  if (Task* task = im.pop_injection()) {
    c.injected.fetch_add(1, std::memory_order_relaxed);
    return task;
  }
  if (Task* task = im.try_steal(is_worker ? worker_index : SIZE_MAX)) {
    c.stolen.fetch_add(1, std::memory_order_relaxed);
    return task;
  }
  return nullptr;
}

void Scheduler::execute(Task* task, bool from_wait) { impl_->run_task(task, from_wait); }

void Scheduler::notify_waiters() {
  Impl& im = *impl_;
  {
    // Empty critical section: a waiter between its pending_ check and its
    // wait_for() holds wait_mu, so this cannot slip into that window.
    std::lock_guard lk(im.wait_mu);
  }
  im.wait_cv.notify_all();
}

SchedulerStats Scheduler::stats() const {
  const Impl& im = *impl_;
  SchedulerStats s;
  s.worker_busy_ns.reserve(im.workers.size());
  auto add = [&s](const SourceCounters& c) {
    s.spawned += c.spawned.load(std::memory_order_relaxed);
    s.popped += c.popped.load(std::memory_order_relaxed);
    s.stolen += c.stolen.load(std::memory_order_relaxed);
    s.injected += c.injected.load(std::memory_order_relaxed);
    s.helped += c.helped.load(std::memory_order_relaxed);
    s.inline_chunks += c.inline_chunks.load(std::memory_order_relaxed);
  };
  for (const auto& w : im.workers) {
    add(w->counters);
    s.worker_busy_ns.push_back(w->counters.busy_ns.load(std::memory_order_relaxed));
  }
  add(im.external);
  s.external_busy_ns = im.external.busy_ns.load(std::memory_order_relaxed);
  return s;
}

void Scheduler::reset_stats() {
  Impl& im = *impl_;
  auto clear = [](SourceCounters& c) {
    c.spawned.store(0, std::memory_order_relaxed);
    c.popped.store(0, std::memory_order_relaxed);
    c.stolen.store(0, std::memory_order_relaxed);
    c.injected.store(0, std::memory_order_relaxed);
    c.helped.store(0, std::memory_order_relaxed);
    c.inline_chunks.store(0, std::memory_order_relaxed);
    c.busy_ns.store(0, std::memory_order_relaxed);
  };
  for (const auto& w : im.workers) clear(w->counters);
  clear(im.external);
}

void Scheduler::publish_trace_counters() const {
  const SchedulerStats s = stats();
  trace::counter_add("sched.workers", static_cast<std::uint64_t>(thread_count()));
  trace::counter_add("sched.tasks_spawned", s.spawned);
  trace::counter_add("sched.tasks_popped", s.popped);
  trace::counter_add("sched.tasks_stolen", s.stolen);
  trace::counter_add("sched.tasks_injected", s.injected);
  trace::counter_add("sched.tasks_helped_in_wait", s.helped);
  trace::counter_add("sched.chunks_inline", s.inline_chunks);
  trace::counter_add("sched.steal_ratio_pct",
                     static_cast<std::uint64_t>(s.steal_ratio() * 100.0 + 0.5));
  trace::counter_add("sched.busy_ns_total", s.total_busy_ns());
  for (std::size_t i = 0; i < s.worker_busy_ns.size(); ++i) {
    trace::counter_add("sched.busy_ns_worker" + std::to_string(i), s.worker_busy_ns[i]);
  }
}

Scheduler& Scheduler::global() {
  if (Scheduler* s = g_override.load(std::memory_order_acquire)) return *s;
  static Scheduler instance;
  g_global_built.store(true, std::memory_order_relaxed);
  return instance;
}

bool Scheduler::set_default_threads(std::size_t threads) {
  g_default_threads.store(threads, std::memory_order_relaxed);
  return !g_global_built.load(std::memory_order_relaxed);
}

ScopedScheduler::ScopedScheduler(std::size_t threads)
    : mine_(std::make_unique<Scheduler>(threads)),
      prev_(g_override.exchange(mine_.get(), std::memory_order_acq_rel)) {}

ScopedScheduler::~ScopedScheduler() {
  g_override.store(prev_, std::memory_order_release);
}

void TaskGroup::spawn(Task& task) {
  task.group = this;
  pending_.fetch_add(1, std::memory_order_relaxed);
  sched_.submit(&task);
}

void TaskGroup::run_inline(Task& task) {
  task.group = this;
  sched_.impl_->counters_here().inline_chunks.fetch_add(1, std::memory_order_relaxed);
  try {
    task.invoke(&task);
  } catch (...) {
    capture(std::current_exception());
  }
}

void TaskGroup::wait() {
  Scheduler& s = sched_;
  Scheduler::Impl& im = *s.impl_;
  const bool is_worker = (t_owner == &im);
  const std::size_t self_index = is_worker ? t_worker_index : SIZE_MAX;
  int empty_timeouts = 0;
  while (pending_.load(std::memory_order_acquire) != 0) {
    Task* task = s.find_task(is_worker, self_index);
    if (task == nullptr && empty_timeouts >= kCapEscapeTimeouts) {
      // Every runnable thread may be parked at the help cap; help anyway
      // (bounded stack growth beats a deadlock), bypassing the cap check.
      if ((task = im.pop_injection()) == nullptr) task = im.try_steal(self_index);
      if (task != nullptr) {
        im.counters_here().stolen.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (task != nullptr) {
      empty_timeouts = 0;
      ++t_help_depth;
      s.execute(task, /*from_wait=*/true);
      --t_help_depth;
      continue;
    }
    std::unique_lock lk(im.wait_mu);
    if (pending_.load(std::memory_order_acquire) == 0) break;
    im.wait_cv.wait_for(lk, kWaiterParkTimeout);
    ++empty_timeouts;
  }
  std::exception_ptr error;
  {
    std::lock_guard lk(mu_);
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void TaskGroup::capture(std::exception_ptr error) {
  std::lock_guard lk(mu_);
  if (!error_) error_ = std::move(error);
}

void TaskGroup::finish_one() {
  // Cache the scheduler BEFORE the decrement: the moment pending_ hits
  // zero the waiter may return from wait() and destroy this group, so the
  // completion signal must only touch scheduler-lifetime state.
  Scheduler* s = &sched_;
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    s->notify_waiters();
  }
}

}  // namespace cesm
