#include "util/thread_pool.h"

#include <algorithm>

namespace cesm {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

bool ThreadPool::on_worker_thread() const {
  auto self = std::this_thread::get_id();
  return std::any_of(workers_.begin(), workers_.end(),
                     [self](const std::thread& t) { return t.get_id() == self; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  if (begin >= end) return;
  ThreadPool& pool = ThreadPool::global();
  const std::size_t n = end - begin;
  const std::size_t threads = pool.thread_count();
  if (n <= grain || threads <= 1 || pool.on_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  // Static chunking: ~4 chunks per thread to smooth imbalance while keeping
  // scheduling overhead negligible for the coarse tasks we run.
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, threads * 4));
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }
  pool.wait_idle();
}

}  // namespace cesm
