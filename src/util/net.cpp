#include "util/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cesm::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::shutdown_both() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw IoError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // remove a stale socket file from a prior run
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind(" + path + ")");
  }
  if (::listen(sock.fd(), backlog) != 0) throw_errno("listen(" + path + ")");
  return sock;
}

Socket listen_tcp(std::uint16_t port, std::uint16_t* bound_port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind(tcp:" + std::to_string(port) + ")");
  }
  if (::listen(sock.fd(), backlog) != 0) throw_errno("listen(tcp)");

  if (bound_port != nullptr) {
    sockaddr_in actual = {};
    socklen_t len = sizeof(actual);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      throw_errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return sock;
}

Socket accept_connection(const Socket& listener) {
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  return Socket(fd);  // invalid on error — caller decides retry vs stop
}

Socket connect_unix(const std::string& path) {
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw IoError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket(AF_UNIX)");
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("connect(" + path + ")");
  }
  return sock;
}

Socket connect_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw IoError("invalid IPv4 address: " + host);
  }

  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket(AF_INET)");
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return sock;
}

void send_all(const Socket& sock, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(sock.fd(), data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    if (rc == 0) throw IoError("send: connection closed");
    sent += static_cast<std::size_t>(rc);
  }
}

bool recv_exact(const Socket& sock, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(sock.fd(), out + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (rc == 0) {
      if (got == 0) return false;  // clean EOF at a message boundary
      throw IoError("recv: connection closed mid-message");
    }
    got += static_cast<std::size_t>(rc);
  }
  return true;
}

void write_frame(const Socket& sock, std::uint8_t type,
                 std::span<const std::uint8_t> payload) {
  Bytes header;
  header.reserve(kFrameHeaderBytes);
  ByteWriter w(header);
  w.u32(kFrameMagic);
  w.u8(type);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  send_all(sock, header.data(), header.size());
  if (!payload.empty()) send_all(sock, payload.data(), payload.size());
}

std::optional<Frame> read_frame(const Socket& sock, std::uint32_t max_payload) {
  std::uint8_t header[kFrameHeaderBytes];
  if (!recv_exact(sock, header, sizeof(header))) return std::nullopt;

  ByteReader reader(std::span<const std::uint8_t>(header, sizeof(header)));
  const std::uint32_t magic = reader.u32();
  if (magic != kFrameMagic) {
    throw FormatError("bad frame magic");
  }
  Frame frame;
  frame.type = reader.u8();
  const std::uint32_t len = reader.u32();
  // Validate the declared length BEFORE allocating: a hostile 4 GiB
  // length must be rejected as a format error, not attempted.
  if (len > max_payload) {
    throw FrameTooLarge("frame payload exceeds limit (" + std::to_string(len) +
                        " > " + std::to_string(max_payload) + " bytes)");
  }
  frame.payload.resize(len);
  if (len > 0 && !recv_exact(sock, frame.payload.data(), len)) {
    throw IoError("recv: connection closed mid-frame");
  }
  return frame;
}

}  // namespace cesm::util
