#pragma once
// Error handling primitives shared across the library.
//
// The library throws exceptions derived from cesm::Error for unrecoverable
// conditions (malformed streams, contract violations at API boundaries).
// Hot inner loops use CESM_ASSERT, compiled out in release unless
// CESMCOMP_ENABLE_ASSERTS is defined.

#include <stdexcept>
#include <string>

namespace cesm {

/// Base class for all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an encoded stream is malformed or truncated.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error("format error: " + what) {}
};

/// Thrown when caller-supplied arguments violate a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error("invalid argument: " + what) {}
};

/// Thrown when an I/O operation on the filesystem fails.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid(const char* cond, const char* file, int line) {
  throw InvalidArgument(std::string(cond) + " at " + file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace cesm

/// Precondition check at public API boundaries; always on.
#define CESM_REQUIRE(cond)                                         \
  do {                                                             \
    if (!(cond)) ::cesm::detail::throw_invalid(#cond, __FILE__, __LINE__); \
  } while (0)

#if defined(CESMCOMP_ENABLE_ASSERTS) || !defined(NDEBUG)
#define CESM_ASSERT(cond) CESM_REQUIRE(cond)
#else
#define CESM_ASSERT(cond) ((void)0)
#endif
