#include "util/env.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cesm::util {

namespace {

bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

}  // namespace

std::optional<std::uint64_t> parse_env_u64(const char* name, const char* value) {
  if (value == nullptr) return std::nullopt;
  const char* p = value;
  while (is_space(*p)) ++p;
  const char* digits = p;
  std::uint64_t acc = 0;
  bool overflow = false;
  for (; *p >= '0' && *p <= '9'; ++p) {
    const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
    if (acc > (UINT64_MAX - digit) / 10) {
      overflow = true;
    } else {
      acc = acc * 10 + digit;
    }
  }
  const char* end = p;
  while (is_space(*p)) ++p;
  // Reject: no digits at all (covers "", "-1", "+5", "abc"), trailing
  // garbage after the digit run ("64abc"), or 64-bit overflow. strtoull
  // would have accepted the first two shapes — "-1" via unsigned
  // wraparound — which is exactly what this parser exists to stop.
  if (digits == end || *p != '\0' || overflow) {
    if (*value != '\0') {
      std::fprintf(stderr, "%s ignored: not a non-negative integer: \"%s\"\n", name,
                   value);
    }
    return std::nullopt;
  }
  return acc;
}

std::optional<std::uint64_t> env_u64(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  return parse_env_u64(name, value);
}

}  // namespace cesm::util
