#include "util/cache.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <vector>

#include "util/env.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace cesm::util {

std::uint64_t fnv1a64(std::span<const std::uint8_t> data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t KeyHasher::digest() const {
  // One SplitMix64 round diffuses the FNV state so near-identical inputs
  // (e.g. keys differing only in a trailing bool) land far apart.
  return SplitMix64(h_).next();
}

EvictionResult evict_directory_to_budget(const std::filesystem::path& dir,
                                         std::string_view extension,
                                         std::uint64_t max_total_bytes,
                                         std::span<const std::string> protect) {
  EvictionResult result;
  struct Entry {
    std::filesystem::path path;
    std::filesystem::file_time_type mtime;
    std::uint64_t bytes = 0;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& de : std::filesystem::directory_iterator(dir, ec)) {
    if (ec) break;
    std::error_code fec;
    if (!de.is_regular_file(fec) || fec) continue;
    const std::string name = de.path().filename().string();
    if (name.size() < extension.size() ||
        name.compare(name.size() - extension.size(), extension.size(), extension) != 0) {
      continue;
    }
    Entry e;
    e.path = de.path();
    e.bytes = de.file_size(fec);
    if (fec) continue;
    e.mtime = de.last_write_time(fec);
    if (fec) continue;
    total += e.bytes;
    entries.push_back(std::move(e));
  }
  if (total <= max_total_bytes) return result;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  for (const Entry& e : entries) {
    if (total <= max_total_bytes) break;
    const std::string path_str = e.path.string();
    bool is_protected = false;
    for (const std::string& p : protect) {
      if (p == path_str) {
        is_protected = true;
        break;
      }
    }
    if (is_protected) continue;
    std::error_code rec;
    if (!std::filesystem::remove(e.path, rec) || rec) continue;
    total -= e.bytes;
    ++result.files_removed;
    result.bytes_removed += e.bytes;
  }
  if (result.files_removed > 0) {
    trace::counter_add("cache.dir_evict", result.files_removed);
  }
  return result;
}

DiskCache::DiskCache(std::filesystem::path dir, std::string prefix,
                     std::size_t max_payload_bytes, std::uint64_t max_total_bytes)
    : dir_(std::move(dir)),
      prefix_(std::move(prefix)),
      max_payload_bytes_(max_payload_bytes),
      max_total_bytes_(max_total_bytes) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw IoError("cannot create cache directory " + dir_.string() +
                  (ec ? ": " + ec.message() : ""));
  }
}

std::filesystem::path DiskCache::entry_path(std::uint64_t key) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s-%016llx.cesmc", prefix_.c_str(),
                static_cast<unsigned long long>(key));
  return dir_ / name;
}

std::optional<Bytes> DiskCache::read(std::uint64_t key) const {
  const std::filesystem::path path = entry_path(key);
  Bytes raw;
  {
    std::ifstream f(path, std::ios::binary);
    if (!f) {
      trace::counter_add("cache.disk_miss", 1);
      return std::nullopt;
    }
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    f.seekg(0, std::ios::beg);
    if (size < 0) {
      trace::counter_add("cache.disk_miss", 1);
      return std::nullopt;
    }
    raw.resize(static_cast<std::size_t>(size));
    if (!raw.empty() &&
        !f.read(reinterpret_cast<char*>(raw.data()),
                static_cast<std::streamsize>(raw.size()))) {
      raw.clear();  // short read: fall through to the corrupt path below
    }
  }

  // Validation (and the injectable fault) share one recovery path: any
  // Error here means the entry cannot be trusted — count it, delete it,
  // and report a miss so the caller regenerates the value.
  try {
    CESM_FAILPOINT("cache.disk_read");
    ByteReader r(raw);
    if (r.u32() != kMagic) throw FormatError("cache entry magic mismatch");
    if (r.u32() != kFormatVersion) throw FormatError("cache entry version mismatch");
    if (r.u64() != key) throw FormatError("cache entry key mismatch");
    const std::uint64_t payload_size = r.u64();
    const std::uint64_t checksum = r.u64();
    if (payload_size != r.remaining()) {
      throw FormatError("cache entry payload size mismatch");
    }
    const std::span<const std::uint8_t> payload =
        r.raw(static_cast<std::size_t>(payload_size));
    if (fnv1a64(payload) != checksum) {
      throw FormatError("cache entry checksum mismatch");
    }
    trace::counter_add("cache.disk_hit", 1);
    return Bytes(payload.begin(), payload.end());
  } catch (const Error&) {
    trace::counter_add("cache.disk_corrupt", 1);
    std::error_code ec;
    std::filesystem::remove(path, ec);  // best effort; rewrite replaces it anyway
    return std::nullopt;
  }
}

void DiskCache::write(std::uint64_t key, std::span<const std::uint8_t> payload) const {
  if (max_payload_bytes_ != 0 && payload.size() > max_payload_bytes_) {
    trace::counter_add("cache.oversize", 1);
    return;
  }
  Bytes file;
  ByteWriter w(file);
  w.u32(kMagic);
  w.u32(kFormatVersion);
  w.u64(key);
  w.u64(payload.size());
  w.u64(fnv1a64(payload));
  w.raw(payload);

  const std::filesystem::path path = entry_path(key);
  // Unique temp name per writer so concurrent processes warming the same
  // directory never interleave into one file; rename() then publishes the
  // complete entry atomically (same directory => same filesystem).
  const std::filesystem::path tmp =
      path.string() + ".tmp." +
      std::to_string(static_cast<unsigned long long>(
          hash_combine(reinterpret_cast<std::uintptr_t>(&file), key)));
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f ||
        !f.write(reinterpret_cast<const char*>(file.data()),
                 static_cast<std::streamsize>(file.size()))) {
      trace::counter_add("cache.disk_write_fail", 1);
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    trace::counter_add("cache.disk_write_fail", 1);
    std::filesystem::remove(tmp, ec);
    return;
  }
  trace::counter_add("cache.disk_write", 1);
  if (max_total_bytes_ != 0) {
    const std::string protect[] = {path.string()};
    evict_directory_to_budget(dir_, ".cesmc", max_total_bytes_, protect);
  }
}

CacheConfig CacheConfig::from_env() {
  CacheConfig cfg;
  if (const char* v = std::getenv("CESM_CACHE");
      v != nullptr && (std::string_view(v) == "off" || std::string_view(v) == "0")) {
    cfg.enabled = false;
  }
  if (const auto mb = env_u64("CESM_CACHE_MB")) {
    // strtoull used to live here and accepted "-1" via unsigned wraparound,
    // turning a typo into a ~16-exabyte budget. env_u64 rejects signs,
    // garbage, and overflow with a stderr warning; the shift guard below
    // catches values whose byte count would not fit in size_t.
    if (*mb > (std::numeric_limits<std::size_t>::max() >> 20)) {
      std::fprintf(stderr, "CESM_CACHE_MB ignored: %llu MiB overflows the byte budget\n",
                   static_cast<unsigned long long>(*mb));
    } else {
      cfg.max_bytes = static_cast<std::size_t>(*mb) << 20;
    }
  }
  if (const char* v = std::getenv("CESM_CACHE_DIR"); v != nullptr && *v != '\0') {
    cfg.disk_dir = v;
  }
  if (const auto mb = env_u64("CESM_CACHE_DISK_MB")) {
    if (*mb > (std::numeric_limits<std::uint64_t>::max() >> 20)) {
      std::fprintf(stderr,
                   "CESM_CACHE_DISK_MB ignored: %llu MiB overflows the byte budget\n",
                   static_cast<unsigned long long>(*mb));
    } else {
      cfg.disk_max_bytes = *mb << 20;
    }
  }
  return cfg;
}

}  // namespace cesm::util
