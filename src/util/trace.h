#pragma once
// Low-overhead scoped tracing and metrics for the experiment pipeline.
//
// The suite harnesses fan out over 9 variants x 170 variables x 101
// members; without per-stage timing there is no way to tell whether
// ensemble synthesis, GRIB tuning, codec work, or RMSZ scoring dominates
// a run. This module provides:
//
//   * RAII scoped spans (trace::Span) with nesting, timed on the
//     monotonic clock;
//   * named process-wide counters (bytes in/out, elements, codec calls);
//   * per-thread span buffers merged on demand into one process-wide
//     span tree with count/total/mean/max per label;
//   * export hooks (core/profile_report.{h,cpp} renders the tree as
//     text and JSON; bench/common wires it to --profile=out.json).
//
// Tracing is DISABLED by default. A disabled Span construction or
// counter_add() costs exactly one relaxed atomic load and a branch, so
// instrumented hot paths (codec encode/decode, ChunkedCodec, ncio)
// keep their throughput when nobody is profiling.
//
// Thread model: each thread owns a private span-tree buffer guarded by
// its own (uncontended) mutex; buffers register themselves in a global
// registry on first use and outlive their thread so collect_tree() can
// merge completed work at any time. Spans that are still open when the
// tree is collected are simply not counted yet.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cesm::trace {

namespace detail {
extern std::atomic<bool> g_enabled;
void span_begin(const std::string& label);
void span_end();
void counter_add_slow(const std::string& name, std::uint64_t delta);
}  // namespace detail

/// True while tracing collects. One relaxed atomic load — the entire
/// cost of every disabled-mode Span or counter_add().
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Turn collection on/off (off by default). Spans opened while enabled
/// finish recording even if tracing is disabled before they close.
void set_enabled(bool on);

/// Drop every span and counter recorded so far, on every thread.
/// Currently-open spans survive (their timing restarts from their
/// original start point under a fresh tree).
void reset();

/// RAII scoped span. Nesting follows C++ scope per thread:
///   trace::Span s("suite.variable");
///   { trace::Span t("grib.tune"); ... }   // child of suite.variable
class Span {
 public:
  explicit Span(const char* label) : armed_(enabled()) {
    if (armed_) detail::span_begin(label);
  }
  explicit Span(const std::string& label) : armed_(enabled()) {
    if (armed_) detail::span_begin(label);
  }
  ~Span() {
    if (armed_) detail::span_end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool armed_;
};

/// Add to a named process-wide counter. No-op while disabled.
inline void counter_add(const char* name, std::uint64_t delta) {
  if (enabled()) detail::counter_add_slow(name, delta);
}
inline void counter_add(const std::string& name, std::uint64_t delta) {
  if (enabled()) detail::counter_add_slow(name, delta);
}

/// Aggregated timing for one span label at one tree position.
struct SpanStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;

  [[nodiscard]] double total_seconds() const { return static_cast<double>(total_ns) * 1e-9; }
  [[nodiscard]] double mean_seconds() const {
    return count == 0 ? 0.0 : total_seconds() / static_cast<double>(count);
  }
  [[nodiscard]] double max_seconds() const { return static_cast<double>(max_ns) * 1e-9; }

  void merge(const SpanStats& other) {
    count += other.count;
    total_ns += other.total_ns;
    max_ns = max_ns > other.max_ns ? max_ns : other.max_ns;
  }
};

/// One node of the merged span tree. The root is synthetic ("profile");
/// its children are the top-level spans of every thread, merged by
/// label, sorted by total time descending.
struct ReportNode {
  std::string label;
  SpanStats stats;
  std::vector<ReportNode> children;

  /// First child with the given label, or nullptr.
  [[nodiscard]] const ReportNode* child(const std::string& child_label) const;
  /// Recursive node count, root included.
  [[nodiscard]] std::size_t size() const;
};

/// Merge every thread's completed spans into one tree.
ReportNode collect_tree();

/// Flat per-label totals over the whole tree (a label appearing at
/// several tree positions is summed).
std::map<std::string, SpanStats> aggregate_by_label();

/// Snapshot of every named counter, summed over threads.
std::map<std::string, std::uint64_t> counters();

}  // namespace cesm::trace
