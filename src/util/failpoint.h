#pragma once
// Deterministic fault injection (cesm::fail).
//
// The suite's whole product is trust: the paper's methodology certifies a
// compression pipeline, so the pipeline's *error paths* — truncated
// streams, failed decodes, scheduler task failures, I/O errors mid-suite
// — need the same mechanical coverage as its happy paths. This module
// provides named failpoint sites compiled into those paths:
//
//   CESM_FAILPOINT("fpz.decode");
//
// A disabled site (the production state) costs exactly one relaxed
// atomic load and a branch, the same budget as a disabled trace::Span.
// When a site is armed and its trigger decides to fire, the site throws
// fail::InjectedFault (a cesm::Error), exercising the surrounding code's
// real unwind path.
//
// Triggers are deterministic:
//   * once            — fire on the next hit, then disarm;
//   * nth:N           — fire on the Nth armed hit (1-based), then disarm;
//   * prob:P[:SEED]   — fire each hit with probability P, decided by a
//                       pure hash of (SEED, armed-hit index) so a given
//                       hit sequence always fires at the same indices;
//   * always          — fire on every hit (targeted unit tests);
//   * off             — disarm.
//
// Configuration comes from the CESM_FAILPOINTS environment variable
// ("site=trigger,site=trigger", parsed once at process start) or from the
// arm()/disarm()/ScopedFailpoint API used by tests.
//
// Sites are registered in the canonical list in failpoint.cpp so
// all_sites() enumerates every site without having to execute it; the
// failpoint meta-test uses that to fail when a site has no test firing
// it. Per-site hit/fire counts are kept while the subsystem is enabled
// and mirrored into cesm::trace counters ("fail.hit.<site>",
// "fail.fired.<site>") when tracing collects, so --profile reports show
// injected-fault activity alongside the timing tree.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/error.h"

namespace cesm::fail {

/// Thrown by a firing failpoint. Derives from cesm::Error so injected
/// faults travel the exact unwind path a real decode/I-O failure takes.
class InjectedFault : public Error {
 public:
  explicit InjectedFault(const std::string& site)
      : Error("injected fault at failpoint " + site), site_(site) {}
  [[nodiscard]] const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// When and how an armed site fires.
struct Trigger {
  enum class Kind : std::uint8_t { kNever, kAlways, kNth, kProbability };
  Kind kind = Kind::kNever;
  std::uint64_t n = 0;        ///< kNth: fire on the nth armed hit (1-based)
  double probability = 0.0;   ///< kProbability: chance per armed hit
  std::uint64_t seed = 0;     ///< kProbability: hash seed

  static Trigger off() { return {}; }
  static Trigger always() { return {Kind::kAlways, 0, 0.0, 0}; }
  static Trigger once() { return nth(1); }
  static Trigger nth(std::uint64_t hit) { return {Kind::kNth, hit, 0.0, 0}; }
  static Trigger with_probability(double p, std::uint64_t seed = 0) {
    return {Kind::kProbability, 0, p, seed};
  }
};

namespace detail {
extern std::atomic<bool> g_enabled;
struct Site;
/// Look up (registering on first sight) the site record for `name`.
/// Called once per CESM_FAILPOINT site via a function-local static.
Site& site(const char* name);
/// Count a hit on an enabled subsystem; throws InjectedFault when the
/// site's trigger fires.
void hit(Site& site);
}  // namespace detail

/// True while at least one site is armed. The entire disabled-mode cost
/// of every CESM_FAILPOINT.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Arm `site` with `trigger` (Kind::kNever disarms). Throws
/// InvalidArgument for a site name not in the registry.
void arm(const std::string& site, const Trigger& trigger);

/// Disarm one site / every site. Counters are preserved.
void disarm(const std::string& site);
void disarm_all();

/// Disarm everything and zero all hit/fire counters (test isolation).
void reset();

/// Parse and apply a CESM_FAILPOINTS spec: comma- or semicolon-separated
/// `site=trigger` entries, e.g. "fpz.decode=once,grib2.decode=nth:3".
/// Throws InvalidArgument on malformed specs or unknown sites.
void configure(const std::string& spec);

/// Apply the CESM_FAILPOINTS environment variable (no-op when unset).
/// Called automatically once at process start; callable again by tests
/// that need a deterministic re-arm after disarm_all(). Returns true when
/// the variable was present and applied. A malformed value is reported on
/// stderr and skipped rather than aborting the host process.
bool configure_from_env();

/// Every registered site name, sorted. Complete without executing any
/// site: the canonical list in failpoint.cpp pre-registers them.
std::vector<std::string> all_sites();
[[nodiscard]] bool is_registered(const std::string& site);

/// Hits observed / faults fired while the subsystem was enabled. Throws
/// InvalidArgument for unknown sites.
std::uint64_t hit_count(const std::string& site);
std::uint64_t fire_count(const std::string& site);
/// Snapshot of every site's fire count (sites with zero fires included).
std::map<std::string, std::uint64_t> fire_counts();

/// RAII arm/disarm for tests:
///   fail::ScopedFailpoint fp("fpz.decode", fail::Trigger::once());
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, const Trigger& trigger) : site_(std::move(site)) {
    arm(site_, trigger);
  }
  ~ScopedFailpoint() { disarm(site_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
};

}  // namespace cesm::fail

/// A named fault-injection site. Disabled cost: one relaxed atomic load
/// and a branch. The name should be a stable "<layer>.<operation>" label
/// listed in failpoint.cpp's canonical registry.
#define CESM_FAILPOINT(name)                                        \
  do {                                                              \
    if (::cesm::fail::enabled()) {                                  \
      static ::cesm::fail::detail::Site& cesm_failpoint_site =      \
          ::cesm::fail::detail::site(name);                         \
      ::cesm::fail::detail::hit(cesm_failpoint_site);               \
    }                                                               \
  } while (0)
