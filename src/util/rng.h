#pragma once
// Deterministic random number generation.
//
// All stochastic components of the library (ensemble perturbations, field
// synthesis, workload generators) draw from these engines so that every
// experiment is bit-reproducible across runs and platforms. std::mt19937 is
// deliberately avoided: its distributions are implementation-defined.

#include <cstdint>
#include <cmath>

namespace cesm {

/// SplitMix64: tiny, fast, passes BigCrush; used for seeding and hashing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless 64-bit mix of two values; used to derive per-(member,variable)
/// stream seeds without correlation. Chained SplitMix64 finalizers: the
/// first is a bijection of `a`, so distinct (a, b) pairs collide only with
/// generic 2^-64 birthday probability.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  SplitMix64 s1(a);
  SplitMix64 s2(s1.next() ^ b);
  return s2.next();
}

/// PCG32 (O'Neill): small-state generator with excellent statistical quality.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbull) {
    state_ = 0u;
    inc_ = (stream << 1u) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  std::uint32_t next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ull + inc_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound) without modulo bias.
  std::uint32_t bounded(std::uint32_t bound) {
    if (bound <= 1) return 0;
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
      std::uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Standard-normal sampler (Marsaglia polar method) with cached spare.
class NormalSampler {
 public:
  explicit NormalSampler(std::uint64_t seed) : rng_(seed) {}
  explicit NormalSampler(Pcg32 rng) : rng_(rng) {}

  double next() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = rng_.uniform(-1.0, 1.0);
      v = rng_.uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    has_spare_ = true;
    return u * mul;
  }

  double next(double mean, double stddev) { return mean + stddev * next(); }

  Pcg32& engine() { return rng_; }

 private:
  Pcg32 rng_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace cesm
