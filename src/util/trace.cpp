#include "util/trace.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace cesm::trace {

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

using Clock = std::chrono::steady_clock;

/// Per-thread span tree. nodes[0] is the thread's root; every other node
/// hangs off it by label path. The owning thread appends under `mu`
/// (uncontended in steady state); collect_tree() locks the same mutex to
/// take a consistent snapshot.
struct ThreadLog {
  struct Node {
    std::string label;
    std::vector<std::uint32_t> children;  // indices into `nodes`
    SpanStats stats;
  };
  struct Open {
    std::uint32_t node = 0;
    Clock::time_point start;
  };

  std::mutex mu;
  std::vector<Node> nodes;
  std::vector<Open> stack;  // currently-open spans, outermost first
  std::map<std::string, std::uint64_t> counters;

  ThreadLog() { nodes.emplace_back(); }

  std::uint32_t child_of(std::uint32_t parent, const std::string& label) {
    for (std::uint32_t c : nodes[parent].children) {
      if (nodes[c].label == label) return c;
    }
    const auto idx = static_cast<std::uint32_t>(nodes.size());
    nodes.push_back(Node{label, {}, {}});
    nodes[parent].children.push_back(idx);
    return idx;
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadLog>> logs;
};

Registry& registry() {
  // Leaked on purpose: worker threads may record past static destruction.
  static auto* r = new Registry;
  return *r;
}

ThreadLog& thread_log() {
  thread_local std::shared_ptr<ThreadLog> log = [] {
    auto l = std::make_shared<ThreadLog>();
    Registry& reg = registry();
    std::lock_guard lock(reg.mu);
    reg.logs.push_back(l);
    return l;
  }();
  return *log;
}

void merge_into(ReportNode& dst, const ThreadLog& log, std::uint32_t src) {
  dst.stats.merge(log.nodes[src].stats);
  for (std::uint32_t c : log.nodes[src].children) {
    const std::string& label = log.nodes[c].label;
    ReportNode* child = nullptr;
    for (ReportNode& existing : dst.children) {
      if (existing.label == label) {
        child = &existing;
        break;
      }
    }
    if (child == nullptr) {
      dst.children.push_back(ReportNode{label, {}, {}});
      child = &dst.children.back();
    }
    merge_into(*child, log, c);
  }
}

void sort_by_total(ReportNode& node) {
  std::sort(node.children.begin(), node.children.end(),
            [](const ReportNode& a, const ReportNode& b) {
              return a.stats.total_ns > b.stats.total_ns;
            });
  for (ReportNode& c : node.children) sort_by_total(c);
}

void flatten(const ReportNode& node, std::map<std::string, SpanStats>& out) {
  out[node.label].merge(node.stats);
  for (const ReportNode& c : node.children) flatten(c, out);
}

}  // namespace

void span_begin(const std::string& label) {
  ThreadLog& log = thread_log();
  std::lock_guard lock(log.mu);
  const std::uint32_t parent = log.stack.empty() ? 0 : log.stack.back().node;
  log.stack.push_back(ThreadLog::Open{log.child_of(parent, label), Clock::now()});
}

void span_end() {
  const Clock::time_point end = Clock::now();
  ThreadLog& log = thread_log();
  std::lock_guard lock(log.mu);
  if (log.stack.empty()) return;  // reset() raced an open span; drop it
  const ThreadLog::Open open = log.stack.back();
  log.stack.pop_back();
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - open.start).count());
  SpanStats& s = log.nodes[open.node].stats;
  ++s.count;
  s.total_ns += ns;
  s.max_ns = std::max(s.max_ns, ns);
}

void counter_add_slow(const std::string& name, std::uint64_t delta) {
  ThreadLog& log = thread_log();
  std::lock_guard lock(log.mu);
  log.counters[name] += delta;
}

}  // namespace detail

void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

void reset() {
  detail::Registry& reg = detail::registry();
  std::lock_guard reg_lock(reg.mu);
  for (const auto& log : reg.logs) {
    std::lock_guard lock(log->mu);
    // Rebuild the node tree, re-threading any still-open spans so their
    // eventual span_end() lands on a valid node of the fresh tree. The
    // old labels went with the old nodes; mark the re-opened path.
    const std::vector<detail::ThreadLog::Open> open = std::move(log->stack);
    log->nodes.clear();
    log->nodes.emplace_back();
    log->stack.clear();
    std::uint32_t parent = 0;
    for (const detail::ThreadLog::Open& o : open) {
      parent = log->child_of(parent, "(open-at-reset)");
      log->stack.push_back(detail::ThreadLog::Open{parent, o.start});
    }
    log->counters.clear();
  }
}

const ReportNode* ReportNode::child(const std::string& child_label) const {
  for (const ReportNode& c : children) {
    if (c.label == child_label) return &c;
  }
  return nullptr;
}

std::size_t ReportNode::size() const {
  std::size_t n = 1;
  for (const ReportNode& c : children) n += c.size();
  return n;
}

ReportNode collect_tree() {
  ReportNode root;
  root.label = "profile";
  detail::Registry& reg = detail::registry();
  std::lock_guard reg_lock(reg.mu);
  for (const auto& log : reg.logs) {
    std::lock_guard lock(log->mu);
    detail::merge_into(root, *log, 0);
  }
  detail::sort_by_total(root);
  // The synthetic root carries no timing of its own; report the sum of
  // its direct children as the covered total.
  root.stats = SpanStats{};
  for (const ReportNode& c : root.children) root.stats.merge(c.stats);
  return root;
}

std::map<std::string, SpanStats> aggregate_by_label() {
  std::map<std::string, SpanStats> out;
  const ReportNode root = collect_tree();
  for (const ReportNode& c : root.children) detail::flatten(c, out);
  return out;
}

std::map<std::string, std::uint64_t> counters() {
  std::map<std::string, std::uint64_t> out;
  detail::Registry& reg = detail::registry();
  std::lock_guard reg_lock(reg.mu);
  for (const auto& log : reg.logs) {
    std::lock_guard lock(log->mu);
    for (const auto& [name, value] : log->counters) out[name] += value;
  }
  return out;
}

}  // namespace cesm::trace
