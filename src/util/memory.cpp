#include "util/memory.h"

#include <cstdio>
#include <cstring>

#include "util/env.h"
#include "util/error.h"
#include "util/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace cesm::util {

namespace {

/// Parse a "Vm...:   <kB> kB" line value from /proc/self/status.
std::size_t proc_status_kb(const char* key) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "re");
  if (f == nullptr) return 0;
  char line[256];
  const std::size_t key_len = std::strlen(key);
  std::size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':') continue;
    unsigned long long value = 0;
    if (std::sscanf(line + key_len + 1, "%llu", &value) == 1) {
      kb = static_cast<std::size_t>(value);
    }
    break;
  }
  std::fclose(f);
  return kb;
#else
  (void)key;
  return 0;
#endif
}

}  // namespace

std::size_t peak_rss_bytes() {
  if (const std::size_t kb = proc_status_kb("VmHWM"); kb != 0) return kb * 1024;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::size_t>(ru.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::size_t>(ru.ru_maxrss) * 1024;  // kilobytes elsewhere
#endif
  }
#endif
  return 0;
}

std::size_t current_rss_bytes() { return proc_status_kb("VmRSS") * 1024; }

bool reset_peak_rss() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/clear_refs", "we");
  if (f == nullptr) return false;
  // "5" resets the peak-RSS watermark (Documentation/admin-guide/mm).
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
#else
  return false;
#endif
}

std::optional<std::uint64_t> memory_budget_bytes() {
  const std::optional<std::uint64_t> mb = env_u64("CESM_MEM_MB");
  if (!mb || *mb == 0) return std::nullopt;
  return *mb * 1024 * 1024;
}

void MemoryBudget::reject(const char* what, std::uint64_t bytes) const {
  trace::counter_add("mem.budget_exceeded", 1);
  throw Error("memory budget exceeded: allocating " + std::to_string(bytes) +
              " bytes for " + what + " would bring the total to " +
              std::to_string(charged_ + bytes) +
              " bytes against a CESM_MEM_MB cap of " + std::to_string(cap_) +
              " bytes");
}

void MemoryBudget::admit_locked(const char* what, std::uint64_t bytes) {
  (void)what;
  charged_ += bytes;
  if (charged_ > peak_) peak_ = charged_;
  trace::counter_add("mem.charged_bytes", bytes);
}

void MemoryBudget::charge(const char* what, std::uint64_t bytes) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!fits_locked(bytes)) reject(what, bytes);
  admit_locked(what, bytes);
}

void MemoryBudget::reserve(const char* what, std::uint64_t bytes) {
  std::unique_lock<std::mutex> lock(mu_);
  if (cap_ != 0 && bytes > cap_) reject(what, bytes);  // can never fit
  const std::uint64_t ticket = next_ticket_++;
  const bool parked = !(serving_ticket_ == ticket && fits_locked(bytes));
  if (parked) {
    ++waits_;
    trace::counter_add("mem.reserve_waits", 1);
    cv_.wait(lock, [&] { return serving_ticket_ == ticket && fits_locked(bytes); });
  }
  admit_locked(what, bytes);
  ++serving_ticket_;
  cv_.notify_all();
}

void MemoryBudget::release(std::uint64_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    charged_ = bytes > charged_ ? 0 : charged_ - bytes;
  }
  cv_.notify_all();
}

std::uint64_t MemoryBudget::charged_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return charged_;
}

std::uint64_t MemoryBudget::peak_logical_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

std::uint64_t MemoryBudget::reserve_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waits_;
}

}  // namespace cesm::util
