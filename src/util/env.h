#pragma once
// Strict environment-variable parsing (cesm::util).
//
// A long-lived multi-client process cannot afford the classic strtoull
// foot-guns: "-1" wrapping around to a ~16-exabyte cache budget, "64abc"
// silently reading as 64, or an out-of-range value truncating. Every
// numeric CESM_* variable goes through env_u64(), whose policy matches
// the CESM_FAILPOINTS malformed-spec contract: a malformed value is
// reported on stderr and IGNORED (the caller keeps its default) — never
// trusted, never fatal.

#include <cstdint>
#include <optional>

namespace cesm::util {

/// Parse `value` as a non-negative decimal integer for the environment
/// variable `name`. Rejects — with a stderr warning naming the variable —
/// empty strings, any sign ('-' wraparound is exactly the bug this
/// exists to kill; '+' is rejected for symmetry), non-digit trailing
/// garbage, and values that overflow 64 bits. Leading/trailing ASCII
/// whitespace is tolerated. Returns nullopt on rejection.
std::optional<std::uint64_t> parse_env_u64(const char* name, const char* value);

/// getenv(name) + parse_env_u64. Unset or empty returns nullopt silently
/// (absence is not an error); a present-but-malformed value warns.
std::optional<std::uint64_t> env_u64(const char* name);

}  // namespace cesm::util
