#pragma once
// Peak-RSS measurement and a cooperative memory budget (cesm::util).
//
// The out-of-core suite mode promises "bounded memory": that promise is
// only honest if the bound is measured (peak RSS, from the kernel) and
// enforced (a logical budget the streaming pipeline charges its real
// allocations against, failing fast instead of paging). This header
// carries both halves:
//
//   * peak_rss_bytes() reads the process high-water mark — VmHWM from
//     /proc/self/status where available, getrusage(ru_maxrss) otherwise —
//     so bench JSON can record `peak_rss_bytes` next to wall times.
//   * reset_peak_rss() asks the kernel to clear the high-water mark
//     (/proc/self/clear_refs). Best-effort: when unsupported the HWM stays
//     monotonic, which only ever over-reports a later phase — gate-safe.
//   * MemoryBudget is the logical accounting object: the streaming runner
//     charges every slab it allocates (chunk buffers, derived per-point
//     arrays, codec scratch) and the budget throws a clear Error the
//     moment a charge would exceed the cap, naming the offending
//     allocation. The cap comes from CESM_MEM_MB (via memory_budget_bytes)
//     or an explicit byte count; a zero cap disables enforcement but keeps
//     the high-water accounting for the mem.* trace counters.
//
// Trace counters (enabled runs only): "mem.charged_bytes" accumulates
// charges, "mem.budget_exceeded" counts rejected charges; callers snapshot
// peak_logical_bytes() for phase breakdowns.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace cesm::util {

/// Process peak resident set size in bytes (VmHWM, falling back to
/// getrusage). Returns 0 when neither source is available.
std::size_t peak_rss_bytes();

/// Current resident set size in bytes (VmRSS; 0 when unavailable).
std::size_t current_rss_bytes();

/// Reset the kernel's peak-RSS high-water mark so a later phase can be
/// measured independently. Returns true when the kernel accepted the
/// reset; false leaves the (monotonic) HWM untouched.
bool reset_peak_rss();

/// Memory cap from the CESM_MEM_MB environment variable, in bytes.
/// Unset, zero, or malformed (warned by env_u64) -> nullopt (no cap).
std::optional<std::uint64_t> memory_budget_bytes();

/// Logical allocation ledger for a bounded-memory pipeline phase. Not
/// thread-safe: one budget belongs to the phase's owning thread; charge
/// before handing buffers to parallel workers.
class MemoryBudget {
 public:
  /// cap_bytes == 0 means "account but never reject".
  explicit MemoryBudget(std::uint64_t cap_bytes = 0) : cap_(cap_bytes) {}

  /// Record an allocation of `bytes` for `what`. Throws cesm::Error when a
  /// cap is set and the running total would exceed it; the message names
  /// the allocation, its size, the total, and the cap so the caller can
  /// tell "one slab is too big" from "death by a thousand buffers".
  void charge(const char* what, std::uint64_t bytes);

  /// Return `bytes` to the budget (clamped at zero; release of buffers
  /// charged before an exception must never underflow).
  void release(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t cap_bytes() const { return cap_; }
  [[nodiscard]] std::uint64_t charged_bytes() const { return charged_; }
  [[nodiscard]] std::uint64_t peak_logical_bytes() const { return peak_; }

 private:
  std::uint64_t cap_ = 0;
  std::uint64_t charged_ = 0;
  std::uint64_t peak_ = 0;
};

}  // namespace cesm::util
