#pragma once
// Peak-RSS measurement and a cooperative memory budget (cesm::util).
//
// The out-of-core suite mode promises "bounded memory": that promise is
// only honest if the bound is measured (peak RSS, from the kernel) and
// enforced (a logical budget the streaming pipeline charges its real
// allocations against, failing fast instead of paging). This header
// carries both halves:
//
//   * peak_rss_bytes() reads the process high-water mark — VmHWM from
//     /proc/self/status where available, getrusage(ru_maxrss) otherwise —
//     so bench JSON can record `peak_rss_bytes` next to wall times.
//   * reset_peak_rss() asks the kernel to clear the high-water mark
//     (/proc/self/clear_refs). Best-effort: when unsupported the HWM stays
//     monotonic, which only ever over-reports a later phase — gate-safe.
//   * MemoryBudget is the logical accounting object: the streaming runner
//     charges every slab it allocates (chunk buffers, derived per-point
//     arrays, codec scratch) and the budget throws a clear Error the
//     moment a charge would exceed the cap, naming the offending
//     allocation. The cap comes from CESM_MEM_MB (via memory_budget_bytes)
//     or an explicit byte count; a zero cap disables enforcement but keeps
//     the high-water accounting for the mem.* trace counters.
//
// Concurrency: MemoryBudget is thread-safe. charge() keeps its fail-fast
// contract (a charge that does not fit throws immediately), which is what
// a single pipeline wants when its own working set is simply too big for
// the cap. reserve() is the multi-tenant admission primitive layered on
// top: it *parks* the caller until the requested bytes fit, so several
// variable pipelines can race one shared cap without any of them dying —
// backpressure instead of failure. Reservations are admitted in strict
// FIFO ticket order, so a large reservation behind a stream of small ones
// is never starved, and because every tenant acquires its full working
// set in one reservation (all-or-nothing, no hold-and-wait), admission
// order cannot deadlock: the head waiter only ever waits on releases from
// tenants that are already fully admitted and running.
//
// Trace counters (enabled runs only): "mem.charged_bytes" accumulates
// charges, "mem.budget_exceeded" counts rejected charges,
// "mem.reserve_waits" counts reservations that had to park; callers
// snapshot peak_logical_bytes() for phase breakdowns.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace cesm::util {

/// Process peak resident set size in bytes (VmHWM, falling back to
/// getrusage). Returns 0 when neither source is available.
std::size_t peak_rss_bytes();

/// Current resident set size in bytes (VmRSS; 0 when unavailable).
std::size_t current_rss_bytes();

/// Reset the kernel's peak-RSS high-water mark so a later phase can be
/// measured independently. Returns true when the kernel accepted the
/// reset; false leaves the (monotonic) HWM untouched.
bool reset_peak_rss();

/// Memory cap from the CESM_MEM_MB environment variable, in bytes.
/// Unset, zero, or malformed (warned by env_u64) -> nullopt (no cap).
std::optional<std::uint64_t> memory_budget_bytes();

/// Logical allocation ledger for bounded-memory pipeline phases.
/// Thread-safe; see the header comment for the charge()/reserve()
/// split (fail-fast vs park-and-wait).
class MemoryBudget {
 public:
  /// cap_bytes == 0 means "account but never reject".
  explicit MemoryBudget(std::uint64_t cap_bytes = 0) : cap_(cap_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Record an allocation of `bytes` for `what`. Throws cesm::Error when a
  /// cap is set and the running total would exceed it; the message names
  /// the allocation, its size, the total, and the cap so the caller can
  /// tell "one slab is too big" from "death by a thousand buffers".
  void charge(const char* what, std::uint64_t bytes);

  /// Blocking admission: parks the calling thread until `bytes` fit under
  /// the cap, then records them like charge(). Reservations are admitted
  /// in FIFO order (anti-starvation); a reservation larger than the cap
  /// itself can never fit and throws immediately with the same message
  /// shape as charge(). With no cap this never blocks.
  void reserve(const char* what, std::uint64_t bytes);

  /// Return `bytes` to the budget (clamped at zero; release of buffers
  /// charged before an exception must never underflow) and wake any
  /// parked reservations.
  void release(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t cap_bytes() const { return cap_; }
  [[nodiscard]] std::uint64_t charged_bytes() const;
  [[nodiscard]] std::uint64_t peak_logical_bytes() const;
  /// Number of reserve() calls that had to park at least once.
  [[nodiscard]] std::uint64_t reserve_waits() const;

 private:
  [[nodiscard]] bool fits_locked(std::uint64_t bytes) const {
    return cap_ == 0 || charged_ + bytes <= cap_;
  }
  void admit_locked(const char* what, std::uint64_t bytes);
  [[noreturn]] void reject(const char* what, std::uint64_t bytes) const;

  const std::uint64_t cap_ = 0;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t charged_ = 0;
  std::uint64_t peak_ = 0;
  std::uint64_t waits_ = 0;
  std::uint64_t next_ticket_ = 0;     ///< next ticket to hand out
  std::uint64_t serving_ticket_ = 0;  ///< ticket currently allowed to admit
};

/// RAII working-set reservation: reserve() on construction, release() on
/// destruction. The unit of all-or-nothing admission for one streaming
/// variable against the suite's shared budget.
class MemoryReservation {
 public:
  MemoryReservation(MemoryBudget& budget, const char* what, std::uint64_t bytes)
      : budget_(budget), bytes_(bytes) {
    budget_.reserve(what, bytes_);
  }
  ~MemoryReservation() { budget_.release(bytes_); }

  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

 private:
  MemoryBudget& budget_;
  std::uint64_t bytes_ = 0;
};

}  // namespace cesm::util
