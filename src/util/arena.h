#pragma once
// Reusable scratch buffers for steady-state hot loops.
//
// The PVT verify loop runs the same (variable, codec) evaluation shape
// thousands of times per suite sweep; per-iteration heap churn for masks,
// score vectors and staging buffers is pure overhead and fragments the
// allocator under the variable-level parallel_for. A ScratchArena owns a
// set of named slots that grow to their high-water mark once and are then
// reused allocation-free.
//
// Growth is observable: every slot grow adds to the cesm::trace counters
// "arena.grow" (events) and "arena.grow_bytes" while tracing is enabled.
// The steady-state zero-allocation property is asserted mechanically in
// tests/core/test_pvt.cpp: warm one verify pass, reset the counters, run
// another, require arena.grow == 0.
//
// Not thread-safe: one arena belongs to one owner (spans it hands out may
// be *filled* by parallel workers at disjoint indices, but get() itself
// must stay on the owning thread). Spans are invalidated by the next
// get() on the same slot.

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "util/trace.h"

namespace cesm::util {

class ScratchArena {
 public:
  /// Span of `n` value-initialized-free Ts backed by slot `slot`. Contents
  /// are unspecified (reused bytes); callers must write before reading.
  /// Grows the slot only when its current capacity is insufficient.
  template <typename T>
  std::span<T> get(std::size_t slot, std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>,
                  "ScratchArena hands out raw storage");
    if (slot >= slots_.size()) slots_.resize(slot + 1);
    std::vector<unsigned char>& s = slots_[slot];
    const std::size_t need = n * sizeof(T);
    if (s.size() < need) {
      trace::counter_add("arena.grow", 1);
      trace::counter_add("arena.grow_bytes", need - s.size());
      // Geometric growth so a slowly-ramping caller settles after O(log)
      // grows instead of reallocating every iteration.
      s.resize(std::max(need, s.size() * 2));
    }
    // vector<unsigned char> storage comes from operator new and is aligned
    // for every fundamental type the arena hands out.
    return {reinterpret_cast<T*>(s.data()), n};
  }

  /// Total bytes currently reserved across all slots.
  [[nodiscard]] std::size_t reserved_bytes() const {
    std::size_t total = 0;
    for (const auto& s : slots_) total += s.size();
    return total;
  }

  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

  /// Release all storage (the next get() on any slot grows again).
  void release() {
    slots_.clear();
    slots_.shrink_to_fit();
  }

 private:
  std::vector<std::vector<unsigned char>> slots_;
};

}  // namespace cesm::util
