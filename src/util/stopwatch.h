#pragma once
// Wall-clock timing for the performance tables (paper Table 5).

#include <chrono>

namespace cesm {

/// Monotonic stopwatch. Constructed running; restart() resets the origin.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  Clock::time_point start_;
};

}  // namespace cesm
