#include "util/signals.h"

#include <csignal>
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <mutex>

namespace cesm::util {

namespace {

std::atomic<int> g_signal{0};
int g_pipe[2] = {-1, -1};

extern "C" void drain_handler(int sig) {
  // Everything here is async-signal-safe: atomics, write, sigaction, raise.
  int expected = 0;
  if (!g_signal.compare_exchange_strong(expected, sig)) {
    // Second signal: the user really means it. Restore default and
    // re-raise so the process dies with the conventional status.
    std::signal(sig, SIG_DFL);
    ::raise(sig);
    return;
  }
  if (g_pipe[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(g_pipe[1], &byte, 1);
  }
}

}  // namespace

void install_signal_drain() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (::pipe(g_pipe) != 0) {
      g_pipe[0] = g_pipe[1] = -1;
    } else {
      // Non-blocking on both ends: the handler must never block on a full
      // pipe, and the test-reset drain must never block on an empty one.
      ::fcntl(g_pipe[0], F_SETFL, O_NONBLOCK);
      ::fcntl(g_pipe[1], F_SETFL, O_NONBLOCK);
    }
    struct sigaction sa = {};
    sa.sa_handler = drain_handler;
    ::sigemptyset(&sa.sa_mask);
    // SA_RESTART keeps unrelated blocking syscalls from spurious EINTR;
    // poll()-based loops are woken through the self-pipe instead.
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);
  });
}

bool interrupt_requested() {
  return g_signal.load(std::memory_order_relaxed) != 0;
}

int interrupt_signal() { return g_signal.load(std::memory_order_relaxed); }

int interrupt_fd() { return g_pipe[0]; }

int interrupt_exit_code() {
  const int sig = interrupt_signal();
  return sig == 0 ? 0 : 128 + sig;
}

void clear_interrupt_for_tests() {
  g_signal.store(0, std::memory_order_relaxed);
  if (g_pipe[0] >= 0) {
    // Drain any pending wake bytes so the next signal re-arms the pipe.
    char buf[16];
    while (::read(g_pipe[0], buf, sizeof(buf)) > 0) {
    }
  }
}

}  // namespace cesm::util
