#pragma once
// Work-stealing task scheduler with nested parallelism.
//
// Replaces the seed's single-mutex FIFO thread pool, whose nested
// parallel_for calls degraded to serial execution: once run_suite
// parallelized over variables, every inner loop (EnsembleStats build over
// members, GRIB tuning, PVT verify, chunked codec encode/decode) ran on
// one core. This scheduler gives each worker a Chase-Lev-style deque
// (owner pushes/pops LIFO at the bottom, thieves steal FIFO at the top)
// plus a mutex-guarded injection queue for submissions from non-worker
// threads. Joins are help-first: a thread waiting on a TaskGroup —
// worker or external — executes pending tasks instead of blocking, so
//
//   * parallel_for called from inside a task spawns real subtasks that
//     other workers can steal (nested loops compose instead of starving);
//   * two concurrent top-level parallel_for calls are independent joins
//     on independent TaskGroups — there is no global idle barrier.
//
// parallel_for is a template over the loop body: no per-index
// std::function indirect call, no per-task heap allocation in submit
// (one contiguous chunk-task array per loop). parallel_reduce combines
// per-chunk partials in a fixed chunk order whose boundaries depend only
// on the range and grain — never on the worker count or on steal
// interleaving — so reductions are bit-identical across thread counts.
//
// Determinism contract: parallel_for invokes body(i) exactly once per
// index; loops whose iterations write disjoint slots are deterministic
// by construction. parallel_reduce's result is defined as the serial
// left fold, in chunk order, of per-chunk partials each seeded from a
// copy of `init` — the one-thread execution computes exactly the same
// arithmetic, so thread count never changes a single bit.
//
// Worker count: explicit constructor argument, else
// Scheduler::set_default_threads() (the bench --threads flag), else the
// CESM_THREADS environment variable, else std::thread::hardware_concurrency.
//
// Observability: the scheduler keeps always-on relaxed counters (tasks
// spawned / stolen / popped / injected / executed inline or in a join,
// per-worker busy nanoseconds). stats() snapshots them;
// publish_trace_counters() mirrors them into cesm::trace ("sched.*")
// for --profile=out.json reports.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

namespace cesm {

class Scheduler;
class TaskGroup;

/// Type-erased unit of work. Task objects are owned by the spawning code
/// (typically a stack-scoped array inside parallel_for) and must stay
/// alive until the owning TaskGroup::wait() returns.
struct Task {
  void (*invoke)(Task*) = nullptr;
  TaskGroup* group = nullptr;
};

/// Snapshot of the scheduler's work-distribution counters.
struct SchedulerStats {
  std::uint64_t spawned = 0;   ///< tasks enqueued via TaskGroup::spawn
  std::uint64_t popped = 0;    ///< executed from the spawning worker's own deque
  std::uint64_t stolen = 0;    ///< executed after a successful steal
  std::uint64_t injected = 0;  ///< executed from the external-submission queue
  std::uint64_t helped = 0;    ///< executed inside a TaskGroup::wait (help-first join)
  std::uint64_t inline_chunks = 0;  ///< chunks run directly by the spawning thread
  std::vector<std::uint64_t> worker_busy_ns;  ///< per-worker task execution time
  std::uint64_t external_busy_ns = 0;  ///< busy time of helping non-worker threads

  /// Fraction of executed tasks that crossed workers via a steal.
  [[nodiscard]] double steal_ratio() const {
    const std::uint64_t executed = popped + stolen + injected;
    return executed == 0 ? 0.0
                         : static_cast<double>(stolen) / static_cast<double>(executed);
  }
  [[nodiscard]] std::uint64_t total_busy_ns() const {
    std::uint64_t total = external_busy_ns;
    for (std::uint64_t ns : worker_busy_ns) total += ns;
    return total;
  }
};

class Scheduler {
 public:
  /// Spawns `threads` workers; 0 means the default resolution order
  /// documented above (set_default_threads, then CESM_THREADS, then
  /// hardware concurrency; always at least 1).
  explicit Scheduler(std::size_t threads = 0);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] std::size_t thread_count() const;

  /// True when the calling thread is one of this scheduler's workers.
  [[nodiscard]] bool on_worker_thread() const;

  /// Benchmarking/compat knob reproducing the seed FIFO pool's semantics:
  /// while set, parallel loops entered from a worker thread run serially
  /// inline instead of spawning subtasks. bench_suite uses it to measure
  /// the old "outer-parallel, inner-serial" baseline on identical code.
  void set_serialize_nested(bool on);
  [[nodiscard]] bool serialize_nested() const;

  [[nodiscard]] SchedulerStats stats() const;
  void reset_stats();

  /// Mirror the current stats() into cesm::trace counters ("sched.*").
  /// counter_add accumulates, so call once per profiling report.
  void publish_trace_counters() const;

  /// Process-wide scheduler, lazily constructed on first use (possibly
  /// overridden by ScopedScheduler).
  static Scheduler& global();

  /// Worker count the lazily-built global scheduler (and any Scheduler
  /// constructed with threads == 0) will use; takes precedence over
  /// CESM_THREADS. Returns false when the global scheduler already
  /// exists, in which case the call has no effect on it.
  static bool set_default_threads(std::size_t threads);

 private:
  friend class TaskGroup;
  friend class ScopedScheduler;

  struct Impl;

  void submit(Task* task);
  Task* find_task(bool is_worker, std::size_t worker_index);
  void execute(Task* task, bool from_wait);
  void notify_waiters();

  std::unique_ptr<Impl> impl_;
};

/// RAII override of Scheduler::global() — tests and benches run the same
/// code under schedulers of different sizes. Install and remove only from
/// a quiescent point (no parallel loops in flight on the previous global).
class ScopedScheduler {
 public:
  explicit ScopedScheduler(std::size_t threads);
  ~ScopedScheduler();

  ScopedScheduler(const ScopedScheduler&) = delete;
  ScopedScheduler& operator=(const ScopedScheduler&) = delete;

  [[nodiscard]] Scheduler& scheduler() { return *mine_; }

 private:
  std::unique_ptr<Scheduler> mine_;
  Scheduler* prev_;
};

/// A join scope for a batch of spawned tasks. wait() is help-first: the
/// waiting thread executes pending tasks (its own deque first, then the
/// injection queue, then steals) until every spawned task of this group
/// has finished, then rethrows the first captured task exception.
/// A group may be reused for consecutive spawn/wait rounds; it must not
/// be destroyed with spawned tasks still pending.
class TaskGroup {
 public:
  explicit TaskGroup(Scheduler& sched = Scheduler::global()) : sched_(sched) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueue `task` (sets task.group). The task object must outlive wait().
  void spawn(Task& task);

  /// Run `task` directly on the calling thread under this group's
  /// exception capture — parallel_for uses it so the spawning thread
  /// works on the first chunk while workers steal the rest.
  void run_inline(Task& task);

  /// Block (helping) until all spawned tasks finished; rethrow the first
  /// task exception.
  void wait();

 private:
  friend class Scheduler;

  void capture(std::exception_ptr error);
  void finish_one();

  Scheduler& sched_;
  std::atomic<std::size_t> pending_{0};
  std::mutex mu_;  // guards error_
  std::exception_ptr error_;
};

namespace detail {

/// One contiguous range of a parallel_for, pointing at the shared body.
template <class Body>
struct ChunkTask final : Task {
  std::size_t lo = 0;
  std::size_t hi = 0;
  const Body* body = nullptr;

  static void run(Task* task) {
    auto* self = static_cast<ChunkTask*>(task);
    const Body& f = *self->body;
    for (std::size_t i = self->lo; i < self->hi; ++i) f(i);
  }
};

/// Upper bound on tasks per loop: enough over-decomposition for stealing
/// to balance very uneven iterations, bounded so per-element loops do not
/// allocate millions of task descriptors.
inline constexpr std::size_t kMaxChunksPerLoop = 1024;

}  // namespace detail

/// Parallel loop over [begin, end): body(i) is invoked exactly once per
/// index, in unspecified order and thread placement. `grain` is the
/// minimum number of indices per task — use 1 when every index is a
/// substantial unit of work (a variable, a member, a codec chunk).
/// Exceptions from body propagate to the caller after the loop quiesces.
/// Runs serially when the range fits one grain, the scheduler has one
/// worker, or serialize_nested is set and the caller is a worker.
/// Nested calls spawn real subtasks; they compose instead of serializing.
template <class Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body,
                  std::size_t grain = 1) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  Scheduler& sched = Scheduler::global();
  const std::size_t n = end - begin;
  if (n <= grain || sched.thread_count() <= 1 ||
      (sched.serialize_nested() && sched.on_worker_thread())) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  // Chunk boundaries depend only on (n, grain) — not on the worker count —
  // so the task decomposition is reproducible run to run.
  const std::size_t chunks =
      std::min((n + grain - 1) / grain, detail::kMaxChunksPerLoop);
  const std::size_t step = (n + chunks - 1) / chunks;
  std::vector<detail::ChunkTask<Body>> tasks(chunks);
  std::size_t used = 0;
  for (std::size_t lo = begin; lo < end; lo += step, ++used) {
    detail::ChunkTask<Body>& t = tasks[used];
    t.invoke = &detail::ChunkTask<Body>::run;
    t.lo = lo;
    t.hi = std::min(end, lo + step);
    t.body = &body;
  }
  TaskGroup group(sched);
  for (std::size_t c = 1; c < used; ++c) group.spawn(tasks[c]);
  group.run_inline(tasks[0]);  // the caller works instead of blocking
  group.wait();
}

/// Default chunk count for parallel_reduce when grain == 0.
inline constexpr std::size_t kDefaultReduceChunks = 64;

/// Deterministic parallel reduction over [begin, end).
///
///   chunk_fn(lo, hi, T acc) -> T   serial fold of one chunk, seeded from
///                                  a copy of `init`;
///   combine(T acc, T partial) -> T combination of adjacent partials.
///
/// The result is DEFINED as the left fold, in ascending chunk order, of
/// the per-chunk partials: chunk boundaries depend only on (n, grain), and
/// the single-thread path computes the identical chunked expression, so
/// the result is bit-identical for every worker count and steal
/// interleaving — including non-associative floating-point folds.
/// `grain` is the chunk width in indices (0 = split into at most
/// kDefaultReduceChunks chunks). T must be copyable; partials are stored
/// in one vector of `chunks` elements.
template <class T, class ChunkFn, class CombineFn>
[[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end, T init,
                                const ChunkFn& chunk_fn, const CombineFn& combine,
                                std::size_t grain = 0) {
  if (begin >= end) return init;
  const std::size_t n = end - begin;
  if (grain == 0) grain = (n + kDefaultReduceChunks - 1) / kDefaultReduceChunks;
  const std::size_t chunks = (n + grain - 1) / grain;
  if (chunks == 1) return chunk_fn(begin, end, std::move(init));
  std::vector<T> partials(chunks);
  parallel_for(
      0, chunks,
      [&](std::size_t c) {
        const std::size_t lo = begin + c * grain;
        const std::size_t hi = std::min(end, lo + grain);
        partials[c] = chunk_fn(lo, hi, T(init));
      },
      1);
  T acc = std::move(partials[0]);
  for (std::size_t c = 1; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[c]));
  }
  return acc;
}

}  // namespace cesm
