#pragma once
// Minimal POSIX socket + length-prefixed frame layer (cesm::util).
//
// The cesmd verification daemon and its clients speak frames, not raw
// bytes: every message on the wire is
//
//   u32 magic "CSMF" | u8 type | u32 payload length | payload bytes
//
// (all little-endian, written with the same ByteWriter the codecs and
// the cache snapshots use). The framing layer is deliberately hostile-
// input-first: a wrong magic or an over-limit declared length throws
// FormatError before a single payload byte is trusted, a connection
// closed cleanly *between* frames reads as end-of-stream (nullopt), and
// a connection dying *inside* a frame throws IoError — three different
// conditions, three different surfaces, so the server can answer each
// with the right typed response instead of crashing or hanging.
//
// Sockets are RAII fds. Unix-domain sockets are the default transport
// (cesmd's socket lives on the filesystem); TCP on loopback is available
// for cross-host setups. All writes use MSG_NOSIGNAL: a vanished client
// must surface as an IoError on the server thread, never as SIGPIPE.

#include <cstdint>
#include <optional>
#include <string>

#include "util/bytes.h"
#include "util/error.h"

namespace cesm::util {

/// RAII file-descriptor wrapper for sockets.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// shutdown(SHUT_RDWR): unblocks any thread inside recv/send on this
  /// socket (the graceful-drain path). Safe on an already-closed socket.
  void shutdown_both() const;

  void close();

 private:
  int fd_ = -1;
};

/// Bind + listen on a unix-domain socket at `path` (an existing stale
/// socket file is removed first). Throws IoError on failure.
Socket listen_unix(const std::string& path, int backlog = 64);

/// Bind + listen on loopback TCP. `port` 0 picks an ephemeral port;
/// `bound_port` (when non-null) receives the actual port.
Socket listen_tcp(std::uint16_t port, std::uint16_t* bound_port = nullptr,
                  int backlog = 64);

/// Accept one connection (blocking). Returns an invalid Socket when the
/// listener was shut down or the accept was interrupted.
Socket accept_connection(const Socket& listener);

Socket connect_unix(const std::string& path);
Socket connect_tcp(const std::string& host, std::uint16_t port);

/// Write all of `data`; throws IoError on a closed/failed peer.
void send_all(const Socket& sock, const std::uint8_t* data, std::size_t n);

/// Read exactly `n` bytes. Returns false on clean EOF *before the first
/// byte*; throws IoError when the stream ends mid-read.
bool recv_exact(const Socket& sock, std::uint8_t* out, std::size_t n);

// --- framing ---------------------------------------------------------------

inline constexpr std::uint32_t kFrameMagic = 0x464D5343;  // "CSMF" little-endian
inline constexpr std::size_t kFrameHeaderBytes = 9;       // magic + type + length

/// Hard ceiling a reader enforces on the declared payload length before
/// allocating anything. Large enough for a full paper-scale
/// VariableResult, small enough that a hostile length cannot OOM the
/// daemon.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

struct Frame {
  std::uint8_t type = 0;
  Bytes payload;
};

/// A frame declared a payload above the reader's limit. Distinct from
/// plain FormatError so a server can answer with its oversized-frame
/// error code instead of the generic malformed-frame one.
class FrameTooLarge : public FormatError {
 public:
  explicit FrameTooLarge(const std::string& what) : FormatError(what) {}
};

/// Serialize and send one frame.
void write_frame(const Socket& sock, std::uint8_t type,
                 std::span<const std::uint8_t> payload);

/// Read one frame. nullopt on clean EOF at a frame boundary; FormatError
/// on bad magic or a declared length above `max_payload`; IoError on a
/// connection lost mid-frame.
std::optional<Frame> read_frame(const Socket& sock,
                                std::uint32_t max_payload = kMaxFramePayload);

}  // namespace cesm::util
