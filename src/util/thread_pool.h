#pragma once
// Shared-memory parallelism: a work-stealing-free, chunk-scheduled thread
// pool plus a parallel_for convenience wrapper.
//
// The experiment harnesses fan out over (variable, codec-variant) pairs and
// over ensemble members; both are embarrassingly parallel. A single global
// pool is used so nested fan-outs do not oversubscribe the machine: calls to
// parallel_for from inside a pool worker degrade to serial execution.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cesm {

/// Fixed-size thread pool executing void() tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Must not be called after destruction begins.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. Rethrows the first
  /// exception raised by any task (others are discarded).
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const;

  /// Process-wide pool, lazily constructed.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Parallel loop over [begin, end): body(i) is invoked exactly once per
/// index, in unspecified order, on pool workers. Chunked statically.
/// Exceptions from body propagate to the caller. Runs serially when the
/// range is small, the pool has one thread, or we are already on a worker.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace cesm
