#include "core/hybrid.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace cesm::core {

namespace {

struct FamilyPlan {
  std::vector<std::string> lossy_variants;  // candidates within the suite
  std::string lossless_name;                // fallback label
  bool lossless_is_fpzip = false;
};

FamilyPlan plan_for(const std::string& family) {
  if (family == "GRIB2") return {{"GRIB2"}, "NetCDF-4", false};
  if (family == "APAX") return {{"APAX-5", "APAX-4", "APAX-2"}, "NetCDF-4", false};
  if (family == "fpzip") return {{"fpzip-16", "fpzip-24"}, "fpzip-32", true};
  if (family == "ISABELA") return {{"ISA-1.0", "ISA-0.5", "ISA-0.1"}, "NetCDF-4", false};
  if (family == "NetCDF-4") return {{}, "NetCDF-4", false};
  throw InvalidArgument("unknown hybrid family: " + family);
}

HybridSelection select_for_variable(const SuiteResults& results,
                                    const VariableResult& var, const FamilyPlan& plan) {
  HybridSelection sel;
  sel.variable = var.variable;

  // Among the family's passing variants, take the best (smallest) CR —
  // "we choose the variant of each method for each variable that yields
  // the best CR and passes all of our tests" (§5.4).
  const VariableVerdict* best = nullptr;
  for (const std::string& name : plan.lossy_variants) {
    const VariableVerdict& verdict = var.verdicts[results.variant_index(name)];
    if (!verdict.all_pass()) continue;
    if (best == nullptr || verdict.mean_cr < best->mean_cr) best = &verdict;
  }

  if (best != nullptr) {
    sel.variant = best->codec;
    sel.cr = best->mean_cr;
    double p = 0.0, nr = 0.0, en = 0.0;
    for (const MemberEvaluation& e : best->members) {
      p += e.metrics.pearson;
      nr += e.metrics.nrmse;
      en += e.metrics.e_nmax;
    }
    const auto n = static_cast<double>(best->members.size());
    sel.pearson = p / n;
    sel.nrmse = nr / n;
    sel.enmax = en / n;
    return sel;
  }

  sel.variant = plan.lossless_name;
  sel.lossless_fallback = true;
  sel.cr = plan.lossless_is_fpzip ? var.fpzip32_cr : var.netcdf4_cr;
  sel.pearson = 1.0;
  sel.nrmse = 0.0;
  sel.enmax = 0.0;
  return sel;
}

}  // namespace

HybridSummary build_hybrid(const SuiteResults& results, const std::string& family) {
  const FamilyPlan plan = plan_for(family);
  HybridSummary summary;
  summary.family = family;
  CESM_REQUIRE(!results.variables.empty());

  double cr_sum = 0.0, p_sum = 0.0, nr_sum = 0.0, en_sum = 0.0;
  summary.best_cr = std::numeric_limits<double>::infinity();
  summary.worst_cr = -std::numeric_limits<double>::infinity();
  for (const VariableResult& var : results.variables) {
    HybridSelection sel = select_for_variable(results, var, plan);
    cr_sum += sel.cr;
    p_sum += sel.pearson;
    nr_sum += sel.nrmse;
    en_sum += sel.enmax;
    summary.best_cr = std::min(summary.best_cr, sel.cr);
    summary.worst_cr = std::max(summary.worst_cr, sel.cr);
    ++summary.variant_counts[sel.variant];
    summary.selections.push_back(std::move(sel));
  }
  const auto n = static_cast<double>(results.variables.size());
  summary.avg_cr = cr_sum / n;
  summary.avg_pearson = p_sum / n;
  summary.avg_nrmse = nr_sum / n;
  summary.avg_enmax = en_sum / n;
  return summary;
}

std::vector<HybridSummary> build_all_hybrids(const SuiteResults& results) {
  std::vector<HybridSummary> all;
  for (const char* family : {"GRIB2", "ISABELA", "fpzip", "APAX", "NetCDF-4"}) {
    all.push_back(build_hybrid(results, family));
  }
  return all;
}

}  // namespace cesm::core
