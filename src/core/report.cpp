#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/error.h"

namespace cesm::core {

std::string format_sci(double value, int significant) {
  if (value == 0.0) return "0";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*e", std::max(0, significant - 1), value);
  // Trim exponent leading zeros: 3.6e-04 -> 3.6e-4.
  std::string s(buf);
  const std::size_t epos = s.find('e');
  if (epos != std::string::npos) {
    std::string mant = s.substr(0, epos);
    std::string exp = s.substr(epos + 1);
    const bool neg = !exp.empty() && exp[0] == '-';
    if (!exp.empty() && (exp[0] == '+' || exp[0] == '-')) exp.erase(0, 1);
    while (exp.size() > 1 && exp[0] == '0') exp.erase(0, 1);
    s = mant + "e" + (neg ? "-" : "") + exp;
  }
  return s;
}

std::string format_fixed(double value, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  CESM_REQUIRE(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      if (c == 0) {
        out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      } else {
        out << std::string(widths[c] - row[c].size(), ' ') << row[c];
      }
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

namespace {

/// Shared log10 axis over positive values.
struct LogAxis {
  double lo = 0.0, hi = 1.0;  // log10 bounds

  [[nodiscard]] std::size_t position(double value, std::size_t width) const {
    const double l = std::log10(std::max(value, std::pow(10.0, lo)));
    const double frac = (l - lo) / (hi - lo);
    const double clamped = std::clamp(frac, 0.0, 1.0);
    return static_cast<std::size_t>(clamped * static_cast<double>(width - 1));
  }
};

LogAxis make_axis(double min_positive, double max_positive) {
  LogAxis ax;
  if (min_positive <= 0.0) min_positive = 1e-12;
  if (max_positive <= min_positive) max_positive = min_positive * 10.0;
  ax.lo = std::floor(std::log10(min_positive));
  ax.hi = std::ceil(std::log10(max_positive));
  if (ax.hi <= ax.lo) ax.hi = ax.lo + 1.0;
  return ax;
}

}  // namespace

std::string render_boxplot_log(const std::vector<LabelledBox>& boxes, std::size_t width) {
  CESM_REQUIRE(!boxes.empty());
  CESM_REQUIRE(width >= 16);
  double lo = std::numeric_limits<double>::infinity(), hi = 0.0;
  for (const LabelledBox& b : boxes) {
    if (b.box.lo > 0.0) lo = std::min(lo, b.box.lo);
    hi = std::max(hi, b.box.hi);
  }
  if (!std::isfinite(lo)) lo = 1e-12;
  const LogAxis ax = make_axis(lo, hi);

  std::size_t label_w = 0;
  for (const LabelledBox& b : boxes) label_w = std::max(label_w, b.label.size());

  std::ostringstream out;
  out << std::string(label_w, ' ') << "  |" << "log10 axis [" << ax.lo << ", " << ax.hi
      << "]\n";
  for (const LabelledBox& b : boxes) {
    std::string line(width, ' ');
    const std::size_t pl = ax.position(b.box.lo, width);
    const std::size_t pq1 = ax.position(b.box.q1, width);
    const std::size_t pm = ax.position(b.box.median, width);
    const std::size_t pq3 = ax.position(b.box.q3, width);
    const std::size_t ph = ax.position(b.box.hi, width);
    for (std::size_t i = pl; i <= ph && i < width; ++i) line[i] = '-';
    for (std::size_t i = pq1; i <= pq3 && i < width; ++i) line[i] = '=';
    line[pl] = '|';
    line[ph] = '|';
    line[pm] = 'M';
    out << b.label << std::string(label_w - b.label.size(), ' ') << "  [" << line << "]  "
        << format_sci(b.box.lo) << " / " << format_sci(b.box.median) << " / "
        << format_sci(b.box.hi) << '\n';
  }
  return out.str();
}

std::string render_histogram(const stats::Histogram& hist,
                             const std::vector<Marker>& markers, std::size_t width) {
  std::ostringstream out;
  const std::size_t max_count = std::max<std::size_t>(1, hist.max_count());
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    const std::size_t bar =
        hist.count(b) == 0
            ? 0
            : std::max<std::size_t>(1, hist.count(b) * width / max_count);
    out << format_fixed(hist.bin_lo(b), 3) << " - " << format_fixed(hist.bin_hi(b), 3)
        << " | " << std::string(bar, '#');
    // Markers landing in this bin.
    std::string tags;
    for (const Marker& m : markers) {
      if (hist.bin_of(m.value) == b) {
        if (!tags.empty()) tags += ", ";
        tags += m.label + "=" + format_fixed(m.value, 3);
      }
    }
    if (!tags.empty()) out << "   << " << tags;
    out << '\n';
  }
  return out.str();
}

std::string render_bias_rects(const std::vector<LabelledRect>& rects) {
  TextTable table({"method", "slope lo", "slope hi", "icept lo", "icept hi",
                   "contains (1,0)", "eq.(9)"});
  for (const LabelledRect& r : rects) {
    table.add_row({r.label, format_fixed(r.rect.slope_lo, 5), format_fixed(r.rect.slope_hi, 5),
                   format_sci(r.rect.intercept_lo, 3), format_sci(r.rect.intercept_hi, 3),
                   r.rect.contains(1.0, 0.0) ? "yes" : "no", r.pass ? "pass" : "FAIL"});
  }
  return table.to_string();
}

}  // namespace cesm::core
