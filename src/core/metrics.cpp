#include "core/metrics.h"

#include <cmath>
#include <limits>

#include "compress/deflate/deflate.h"
#include "stats/correlation.h"
#include "stats/kernels.h"
#include "util/error.h"

namespace cesm::core {

Characterization characterize(const climate::Field& field) {
  return characterize(field, comp::DeflateCodec());
}

Characterization characterize(const climate::Field& field, const comp::Codec& lossless,
                              std::optional<stats::Summary> summary) {
  Characterization c;
  if (summary) {
    c.summary = *summary;
  } else {
    const std::vector<std::uint8_t> mask = field.valid_mask();
    c.summary = stats::summarize(std::span<const float>(field.data), mask);
  }
  const Bytes stream = lossless.encode(field.data, field.shape);
  c.lossless_cr = comp::compression_ratio(stream.size(), field.data.size());
  return c;
}

ErrorMetrics compare_fields(std::span<const float> original,
                            std::span<const float> reconstructed,
                            std::span<const std::uint8_t> valid_mask,
                            std::optional<double> range) {
  CESM_REQUIRE(original.size() == reconstructed.size());
  CESM_REQUIRE(valid_mask.empty() || valid_mask.size() == original.size());

  const stats::kernels::ErrorAccum err =
      stats::kernels::error_norms(original, reconstructed, valid_mask);
  if (err.count == 0) {
    ErrorMetrics m;
    m.e_max = err.max_abs;
    return m;
  }

  double r = 0.0;
  double peak = 0.0;
  if (range) {
    r = *range;
  } else {
    const stats::Summary s = stats::summarize(original, valid_mask);
    r = s.range();
    peak = std::max(std::fabs(s.min), std::fabs(s.max));
  }
  return error_metrics_from(err, r, peak,
                            stats::pearson(original, reconstructed, valid_mask));
}

ErrorMetrics error_metrics_from(const stats::kernels::ErrorAccum& err, double range,
                                double peak, double pearson) {
  ErrorMetrics m;
  m.e_max = err.max_abs;
  m.points = err.count;
  if (m.points == 0) return m;
  m.rmse = std::sqrt(err.sum_sq / static_cast<double>(m.points));
  if (range > 0.0) {
    m.e_nmax = m.e_max / range;
    m.nrmse = m.rmse / range;
  } else {
    // Constant field: exact reconstruction gives zero errors; otherwise
    // report unnormalized magnitudes (range normalization is undefined).
    m.e_nmax = m.e_max;
    m.nrmse = m.rmse;
  }
  m.psnr = m.rmse > 0.0 && peak > 0.0
               ? 20.0 * std::log10(peak / m.rmse)
               : std::numeric_limits<double>::infinity();
  m.pearson = pearson;
  return m;
}

ErrorMetrics compare_fields(const climate::Field& original,
                            std::span<const float> reconstructed) {
  const std::vector<std::uint8_t> mask = original.valid_mask();
  return compare_fields(original.data, reconstructed, mask);
}

}  // namespace cesm::core
