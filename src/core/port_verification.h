#pragma once
// The CESM-PVT's original mission (§4.3): decide whether runs from a new
// machine / compiler / code revision are statistically distinguishable
// from a trusted ensemble. The compression study reuses this machinery;
// this header packages it for its first purpose, so downstream users get
// the port-verification tool as a library API rather than example code.

#include <span>
#include <string>
#include <vector>

#include "climate/ensemble.h"
#include "core/rmsz.h"

namespace cesm::core {

struct PortVerdict {
  std::string variable;
  double rmsz_lo = 0.0;          ///< trusted ensemble RMSZ minimum
  double rmsz_hi = 0.0;          ///< trusted ensemble RMSZ maximum
  double worst_new_rmsz = 0.0;   ///< max RMSZ among the new runs
  double worst_mean_shift = 0.0; ///< max global-mean excursion beyond range
  bool rmsz_pass = false;
  bool global_mean_pass = false;

  [[nodiscard]] bool pass() const { return rmsz_pass && global_mean_pass; }
};

struct PortVerificationOptions {
  /// Widen the RMSZ acceptance window by this fraction of its range on
  /// each side (finite-ensemble allowance).
  double rmsz_range_slack = 0.05;
  /// Allowed global-mean excursion, as a fraction of the trusted
  /// ensemble's own global-mean range (the "range shift" check).
  double mean_shift_tolerance = 0.25;
};

/// Score new runs of one variable against its trusted ensemble. Each new
/// run is a full field (same shape/fill layout as the ensemble members).
PortVerdict verify_port_variable(const EnsembleStats& trusted,
                                 std::span<const climate::Field> new_runs,
                                 const PortVerificationOptions& options = {});

/// Convenience driver: verify `new_member_ids` (generated as extra
/// members, modelling the new machine) across `variables` (first N of
/// the catalog when names empty). Returns one verdict per variable.
std::vector<PortVerdict> verify_port(const climate::EnsembleGenerator& trusted,
                                     std::span<const std::uint32_t> new_member_ids,
                                     std::vector<std::string> variables = {},
                                     std::size_t variable_limit = 16,
                                     const PortVerificationOptions& options = {});

}  // namespace cesm::core
