#pragma once
// RMSZ-guided choice of the GRIB2 decimal scale factor D (§5.4).
//
// The paper reports that one global D gave "quite poor" results, a
// magnitude-based per-variable D improved matters, and competitive results
// required using the RMSZ ensemble test itself to pick D. This module
// implements that ladder: start from the magnitude heuristic and increase
// D (finer quantization, less compression) until a probe member passes the
// RMSZ and E_nmax acceptance rules — or the search gives up.

#include <optional>

#include "core/pvt.h"

namespace cesm::core {

struct GribTuning {
  int decimal_scale = 0;   ///< chosen D
  bool passed = false;     ///< probe member passed at this D
  int attempts = 0;        ///< D values tried
};

/// Tune D for the variable held by `stats`. `fill` is forwarded to the
/// codec's native bitmap support. The probe uses the first entry of
/// `test_members` (tests 1–3 only; the bias sweep stays with the caller).
/// Nonzero `chunk_elems` measures every attempt through a ChunkedCodec
/// with that partition (see SuiteConfig::chunk_elems). `plans`, when
/// non-null, shares each member's bitmap/min-max scan across the whole
/// candidate ladder and leaves the winning scale's wavelet lift cached
/// for the suite's GRIB2 variant verify (see prep.h); only usable with
/// chunk_elems == 0 — the chunked wrapper is unplannable and plans are
/// keyed per whole member here.
GribTuning rmsz_guided_decimal_scale(const EnsembleStats& stats,
                                     std::optional<float> fill,
                                     std::span<const std::size_t> test_members,
                                     const PvtThresholds& thresholds = {},
                                     int significant_digits = 4,
                                     int max_extra_digits = 6,
                                     std::size_t chunk_elems = 0,
                                     comp::PlanStore* plans = nullptr);

}  // namespace cesm::core
