#pragma once
// The CESM-PVT-based verification of a compression method (§4.3).
//
// For one variable, given its perturbation ensemble:
//   1. ρ test        — Pearson correlation >= 0.99999 (§4.2);
//   2. RMSZ test     — reconstructed member's RMSZ falls inside the
//                      ensemble RMSZ distribution AND differs from the
//                      original member's score by <= 1/10 (eq. 8);
//   3. E_nmax test   — e_nmax(original, reconstructed) is <= 1/10 of the
//                      ensemble E_nmax range (eq. 11);
//   4. bias test     — eq. (9) over all members (see core/bias.h).
// Tests 1–3 run on a small set of randomly chosen members (the paper uses
// three); the bias test compresses the whole ensemble.

#include <span>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "compress/prep.h"
#include "core/bias.h"
#include "core/metrics.h"
#include "core/rmsz.h"
#include "util/arena.h"

namespace cesm::core {

struct PvtThresholds {
  double pearson_min = kPearsonThreshold;
  double rmsz_diff_max = 0.1;    ///< eq. (8)
  double enmax_ratio_max = 0.1;  ///< eq. (11)
  double bias_confidence = 0.95;
  /// Finite-ensemble allowance for the "falls within the distribution"
  /// check: the acceptance window is widened by this fraction of the
  /// distribution range on each side. With the paper's 101 members the
  /// window is broad and this barely matters; it keeps the check from
  /// penalizing a member that *is* the distribution extreme.
  double rmsz_range_slack = 0.05;
};

/// Per-member outcome of tests 1–3.
struct MemberEvaluation {
  std::size_t member = 0;
  double cr = 1.0;
  ErrorMetrics metrics;              ///< §4.2 errors vs the original member
  double rmsz_original = 0.0;
  double rmsz_reconstructed = 0.0;
  double rmsz_diff = 0.0;
  bool rmsz_in_distribution = false;
  double enmax_ratio = 0.0;          ///< e_nmax / R_{E_nmax}
  bool rho_pass = false;
  bool rmsz_pass = false;
  bool enmax_pass = false;
};

/// The scalar tail of a member evaluation, shared by the in-core and
/// streaming legs: given the raw measurements (CR, §4.2 metrics, original
/// and reconstructed RMSZ) and the ensemble's precomputed distribution
/// extremes, derive the eq. (8)/(11) windows and the per-test pass flags.
[[nodiscard]] MemberEvaluation finish_member_evaluation(
    std::size_t member, double cr, const ErrorMetrics& metrics, double rmsz_original,
    double rmsz_reconstructed, std::pair<double, double> rmsz_range,
    double enmax_range, const PvtThresholds& thresholds);

/// Verdict for one (variable, codec) pair — one cell of Table 6.
struct VariableVerdict {
  std::string variable;
  std::string codec;
  std::vector<MemberEvaluation> members;
  BiasResult bias;
  bool bias_evaluated = false;
  double mean_cr = 1.0;   ///< average CR over the evaluated members
  bool rho_pass = false;
  bool rmsz_pass = false;
  bool enmax_pass = false;
  bool bias_pass = false;
  /// The intended (lossy) codec failed outright — decode threw — and the
  /// recorded member metrics, if any, come from `fallback_codec` instead
  /// (§5 hybrid semantics: a variable the lossy method cannot serve is
  /// stored lossless). A codec-error verdict never counts as a pass.
  bool codec_error = false;
  std::string error_message;   ///< what the failing codec threw
  std::string fallback_codec;  ///< lossless stand-in name; empty if none ran

  [[nodiscard]] bool all_pass() const {
    return !codec_error && rho_pass && rmsz_pass && enmax_pass && bias_pass;
  }
};

/// Fold `verdict.members` into the verdict's per-test pass flags and mean
/// CR (serial, member order) — shared by the in-core and streaming verify
/// paths so both aggregate identically.
void fold_member_flags(VariableVerdict& verdict);

class PvtVerifier {
 public:
  explicit PvtVerifier(const EnsembleStats& stats, PvtThresholds thresholds = {});

  /// Tests 1–3 for one member.
  [[nodiscard]] MemberEvaluation evaluate_member(const comp::Codec& codec,
                                                 std::size_t member) const;

  /// Full verdict: tests 1–3 on `test_members`, bias over all members
  /// when `run_bias` (compresses the whole ensemble; parallelized).
  ///
  /// The steady-state loop (same verifier, successive codecs) reuses a
  /// scratch arena: after the first call it performs zero verify-layer
  /// heap allocations (asserted via the "arena.grow" trace counter).
  /// Consequently verify() must not run concurrently on one verifier;
  /// distinct verifiers remain independent.
  [[nodiscard]] VariableVerdict verify(const comp::Codec& codec,
                                       std::span<const std::size_t> test_members,
                                       bool run_bias = true) const;

  /// Reconstructed-ensemble RMSZ scores (one per member) — Figure 4's
  /// y-axis data and the bias test input.
  [[nodiscard]] std::vector<double> reconstructed_rmsz(const comp::Codec& codec) const;

  /// Fixed bias-sweep batch width: the sweep round-trips at most this many
  /// members at a time into one resident arena buffer, bounding recon
  /// memory at kBiasBatch fields instead of the whole ensemble. Never
  /// derived from the worker count, so the decomposition (and the
  /// results) are identical at any thread count.
  static constexpr std::size_t kBiasBatch = 16;

  /// The paper's "choose three members at random".
  static std::vector<std::size_t> pick_members(std::size_t count, std::size_t member_count,
                                               std::uint64_t seed);

  /// Attach a shared encode-prep plan store (see prep.h): every encode
  /// this verifier performs is then plan-driven, keyed by member index.
  /// The store may be shared across verifiers (it is thread-safe); plans
  /// never change the produced streams, so verdicts are bit-identical
  /// with or without one. Null detaches.
  void set_plan_store(comp::PlanStore* plans) { plans_ = plans; }

  [[nodiscard]] const EnsembleStats& stats() const { return stats_; }
  [[nodiscard]] const PvtThresholds& thresholds() const { return thresholds_; }

 private:
  /// Fill `scores` (one slot per member) with the reconstructed-ensemble
  /// RMSZ; the allocation-free core of reconstructed_rmsz(). Members
  /// already scored by `known` evaluations (the verify() test members)
  /// are seeded from eval.rmsz_reconstructed instead of being compressed
  /// again — codecs are deterministic, so the reused score is bit-exact.
  /// The rest round-trip in kBiasBatch batches through an arena-backed
  /// decode_into buffer.
  void reconstructed_rmsz_into(const comp::Codec& codec, std::span<double> scores,
                               std::span<const MemberEvaluation> known) const;

  const EnsembleStats& stats_;
  PvtThresholds thresholds_;
  comp::PlanStore* plans_ = nullptr;
  /// Reusable verify-loop scratch (bias-sweep score buffer). Mutable so
  /// the logically-const verify() can recycle capacity across calls.
  mutable util::ScratchArena scratch_;
};

}  // namespace cesm::core
