#include "core/rmsz.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/kernels.h"
#include "util/error.h"
#include "util/trace.h"

namespace cesm::core {

namespace {

/// A member's validity pattern with "no invalid points" normalized to
/// the empty mask, so a field whose fill value never occurs compares
/// equal to a field with no fill value at all.
std::vector<std::uint8_t> effective_mask(const climate::Field& f) {
  std::vector<std::uint8_t> mask = f.valid_mask();
  const bool any_invalid =
      std::find(mask.begin(), mask.end(), std::uint8_t{0}) != mask.end();
  if (!any_invalid) mask.clear();
  return mask;
}

}  // namespace

EnsembleStats::EnsembleStats(std::vector<climate::Field> members)
    : members_(std::move(members)) {
  CESM_REQUIRE(members_.size() >= 3);
  const std::size_t n = members_[0].size();
  for (const climate::Field& f : members_) {
    CESM_REQUIRE(f.size() == n);
  }
  mask_ = effective_mask(members_[0]);
  // The sufficient statistics below apply member 0's mask to every
  // member; a member with a different fill pattern would silently
  // pollute sum_/sum_sq_ with fill values, so reject it up front.
  for (std::size_t m = 1; m < members_.size(); ++m) {
    CESM_REQUIRE(effective_mask(members_[m]) == mask_);
  }
  build();
}

void EnsembleStats::build() {
  trace::Span span("stats.build");
  const std::size_t n = members_[0].size();
  const std::size_t m_count = members_.size();
  constexpr float kInf = std::numeric_limits<float>::infinity();

  sum_.assign(n, 0.0);
  sum_sq_.assign(n, 0.0);
  max1_.assign(n, -kInf);
  max2_.assign(n, -kInf);
  min1_.assign(n, kInf);
  min2_.assign(n, kInf);
  argmax_.assign(n, 0);
  argmin_.assign(n, 0);

  valid_points_ = stats::kernels::count_valid(mask_, n);
  CESM_REQUIRE(valid_points_ > 0);

  // Sufficient statistics and leave-one-out extremes, one fused streaming
  // pass per member (stats/kernels.h hoists the mask branch per block).
  for (std::size_t m = 0; m < m_count; ++m) {
    const std::vector<float>& x = members_[m].data;
    stats::kernels::accumulate_sum_sq(x, mask_, sum_, sum_sq_);
    stats::kernels::update_extremes(x, mask_, static_cast<std::uint32_t>(m), max1_,
                                    max2_, argmax_, min1_, min2_, argmin_);
  }

  // Per-member range and global mean over valid points: one fused
  // min/max/mean kernel pass per member.
  ranges_.resize(m_count);
  global_means_.resize(m_count);
  for (std::size_t m = 0; m < m_count; ++m) {
    const stats::kernels::MomentAccum a =
        stats::kernels::moments(std::span<const float>(members_[m].data), mask_);
    ranges_[m] = a.max - a.min;
    global_means_[m] = a.mean;
  }

  // RMSZ distribution (original members).
  rmsz_dist_.resize(m_count);
  for (std::size_t m = 0; m < m_count; ++m) {
    rmsz_dist_[m] = rmsz_of(m, members_[m].data);
  }

  // E_nmax distribution (eq. 10): member m's largest pointwise distance to
  // any other member, normalized by member m's own range. Mask hoisted per
  // block; the leave-one-out select is branch-free.
  enmax_dist_.resize(m_count);
  for (std::size_t m = 0; m < m_count; ++m) {
    const std::vector<float>& x = members_[m].data;
    double worst = 0.0;
    const std::span<const std::uint8_t> mask(mask_);
    for (std::size_t b = 0; b < n; b += stats::kernels::kBlock) {
      const std::size_t len = std::min(stats::kernels::kBlock, n - b);
      const bool dense =
          mask.empty() || stats::kernels::all_valid(mask.subspan(b, len));
      for (std::size_t i = b; i < b + len; ++i) {
        if (!dense && !mask_[i]) continue;
        const float hi = (argmax_[i] == m) ? max2_[i] : max1_[i];
        const float lo = (argmin_[i] == m) ? min2_[i] : min1_[i];
        const double d = std::max(static_cast<double>(hi) - static_cast<double>(x[i]),
                                  static_cast<double>(x[i]) - static_cast<double>(lo));
        worst = std::max(worst, d);
      }
    }
    enmax_dist_[m] = ranges_[m] > 0.0 ? worst / ranges_[m] : worst;
  }
}

double EnsembleStats::rmsz_of(std::size_t m, std::span<const float> data) const {
  CESM_REQUIRE(m < members_.size());
  const std::size_t n = members_[0].size();
  CESM_REQUIRE(data.size() == n);

  // Sub-ensemble {E \ m} statistics via leave-one-out update of the
  // per-point sufficient statistics. The value removed is the *original*
  // member m, even when scoring reconstructed data in its place. Points
  // with degenerate spread — below the float32 representation noise of
  // the mean (e.g. a saturated cloud-fraction point identical across
  // members) — are skipped; see kDegenerateSpreadRelTol.
  const stats::kernels::ZScoreAccum acc = stats::kernels::zscore_sums(
      data, members_[m].data, sum_, sum_sq_, mask_,
      static_cast<double>(members_.size()), kDegenerateSpreadRelTol);
  if (acc.used == 0) return 0.0;
  return std::sqrt(acc.sum_z2 / static_cast<double>(acc.used));
}

double EnsembleStats::enmax_range() const {
  const auto [lo, hi] = std::minmax_element(enmax_dist_.begin(), enmax_dist_.end());
  return *hi - *lo;
}

}  // namespace cesm::core
