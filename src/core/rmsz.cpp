#include "core/rmsz.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/trace.h"

namespace cesm::core {

namespace {

/// A member's validity pattern with "no invalid points" normalized to
/// the empty mask, so a field whose fill value never occurs compares
/// equal to a field with no fill value at all.
std::vector<std::uint8_t> effective_mask(const climate::Field& f) {
  std::vector<std::uint8_t> mask = f.valid_mask();
  const bool any_invalid =
      std::find(mask.begin(), mask.end(), std::uint8_t{0}) != mask.end();
  if (!any_invalid) mask.clear();
  return mask;
}

}  // namespace

EnsembleStats::EnsembleStats(std::vector<climate::Field> members)
    : members_(std::move(members)) {
  CESM_REQUIRE(members_.size() >= 3);
  const std::size_t n = members_[0].size();
  for (const climate::Field& f : members_) {
    CESM_REQUIRE(f.size() == n);
  }
  mask_ = effective_mask(members_[0]);
  // The sufficient statistics below apply member 0's mask to every
  // member; a member with a different fill pattern would silently
  // pollute sum_/sum_sq_ with fill values, so reject it up front.
  for (std::size_t m = 1; m < members_.size(); ++m) {
    CESM_REQUIRE(effective_mask(members_[m]) == mask_);
  }
  build();
}

void EnsembleStats::build() {
  trace::Span span("stats.build");
  const std::size_t n = members_[0].size();
  const std::size_t m_count = members_.size();
  constexpr float kInf = std::numeric_limits<float>::infinity();

  sum_.assign(n, 0.0);
  sum_sq_.assign(n, 0.0);
  max1_.assign(n, -kInf);
  max2_.assign(n, -kInf);
  min1_.assign(n, kInf);
  min2_.assign(n, kInf);
  argmax_.assign(n, 0);
  argmin_.assign(n, 0);

  valid_points_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!mask_.empty() && !mask_[i]) continue;
    ++valid_points_;
  }
  CESM_REQUIRE(valid_points_ > 0);

  for (std::size_t m = 0; m < m_count; ++m) {
    const std::vector<float>& x = members_[m].data;
    for (std::size_t i = 0; i < n; ++i) {
      if (!mask_.empty() && !mask_[i]) continue;
      const double v = static_cast<double>(x[i]);
      sum_[i] += v;
      sum_sq_[i] += v * v;
      if (x[i] > max1_[i]) {
        max2_[i] = max1_[i];
        max1_[i] = x[i];
        argmax_[i] = static_cast<std::uint32_t>(m);
      } else if (x[i] > max2_[i]) {
        max2_[i] = x[i];
      }
      if (x[i] < min1_[i]) {
        min2_[i] = min1_[i];
        min1_[i] = x[i];
        argmin_[i] = static_cast<std::uint32_t>(m);
      } else if (x[i] < min2_[i]) {
        min2_[i] = x[i];
      }
    }
  }

  // Per-member range and global mean over valid points.
  ranges_.resize(m_count);
  global_means_.resize(m_count);
  for (std::size_t m = 0; m < m_count; ++m) {
    const std::vector<float>& x = members_[m].data;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!mask_.empty() && !mask_[i]) continue;
      const double v = static_cast<double>(x[i]);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      total += v;
    }
    ranges_[m] = hi - lo;
    global_means_[m] = total / static_cast<double>(valid_points_);
  }

  // RMSZ distribution (original members).
  rmsz_dist_.resize(m_count);
  for (std::size_t m = 0; m < m_count; ++m) {
    rmsz_dist_[m] = rmsz_of(m, members_[m].data);
  }

  // E_nmax distribution (eq. 10): member m's largest pointwise distance to
  // any other member, normalized by member m's own range.
  enmax_dist_.resize(m_count);
  for (std::size_t m = 0; m < m_count; ++m) {
    const std::vector<float>& x = members_[m].data;
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!mask_.empty() && !mask_[i]) continue;
      const float hi = (argmax_[i] == m) ? max2_[i] : max1_[i];
      const float lo = (argmin_[i] == m) ? min2_[i] : min1_[i];
      const double d = std::max(static_cast<double>(hi) - static_cast<double>(x[i]),
                                static_cast<double>(x[i]) - static_cast<double>(lo));
      worst = std::max(worst, d);
    }
    enmax_dist_[m] = ranges_[m] > 0.0 ? worst / ranges_[m] : worst;
  }
}

double EnsembleStats::rmsz_of(std::size_t m, std::span<const float> data) const {
  CESM_REQUIRE(m < members_.size());
  const std::size_t n = members_[0].size();
  CESM_REQUIRE(data.size() == n);
  const auto m_count = static_cast<double>(members_.size());
  const std::vector<float>& orig = members_[m].data;

  double sum_z2 = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!mask_.empty() && !mask_[i]) continue;
    // Sub-ensemble {E \ m} statistics via leave-one-out update. The value
    // removed is the *original* member m, even when scoring reconstructed
    // data in its place.
    const double xm = static_cast<double>(orig[i]);
    const double mu = (sum_[i] - xm) / (m_count - 1.0);
    const double var = std::max(0.0, (sum_sq_[i] - xm * xm) / (m_count - 1.0) - mu * mu);
    // Degenerate spread: z-scores are undefined. Spread below the float32
    // representation noise of the mean (e.g. a saturated cloud-fraction
    // point identical across members) is equally meaningless — skip both.
    const double floor_sd = 3e-7 * std::fabs(mu);
    if (var <= floor_sd * floor_sd) continue;
    const double z = (static_cast<double>(data[i]) - mu) / std::sqrt(var);
    sum_z2 += z * z;
    ++used;
  }
  if (used == 0) return 0.0;
  return std::sqrt(sum_z2 / static_cast<double>(used));
}

double EnsembleStats::enmax_range() const {
  const auto [lo, hi] = std::minmax_element(enmax_dist_.begin(), enmax_dist_.end());
  return *hi - *lo;
}

}  // namespace cesm::core
