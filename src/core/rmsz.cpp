#include "core/rmsz.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/kernels.h"
#include "util/error.h"
#include "util/scheduler.h"
#include "util/trace.h"

namespace cesm::core {

namespace {

/// A member's validity pattern with "no invalid points" normalized to
/// the empty mask, so a field whose fill value never occurs compares
/// equal to a field with no fill value at all.
std::vector<std::uint8_t> effective_mask(const climate::Field& f) {
  std::vector<std::uint8_t> mask = f.valid_mask();
  const bool any_invalid =
      std::find(mask.begin(), mask.end(), std::uint8_t{0}) != mask.end();
  if (!any_invalid) mask.clear();
  return mask;
}

}  // namespace

EnsembleStats::EnsembleStats(std::vector<climate::Field> members)
    : members_(std::move(members)) {
  CESM_REQUIRE(members_.size() >= 3);
  const std::size_t n = members_[0].size();
  for (const climate::Field& f : members_) {
    CESM_REQUIRE(f.size() == n);
  }
  mask_ = effective_mask(members_[0]);
  // The sufficient statistics below apply member 0's mask to every
  // member; a member with a different fill pattern would silently
  // pollute sum_/sum_sq_ with fill values, so reject it up front.
  for (std::size_t m = 1; m < members_.size(); ++m) {
    CESM_REQUIRE(effective_mask(members_[m]) == mask_);
  }
  build();
}

void EnsembleStats::build() {
  trace::Span span("stats.build");
  const std::size_t n = members_[0].size();
  const std::size_t m_count = members_.size();
  constexpr float kInf = std::numeric_limits<float>::infinity();

  sum_.assign(n, 0.0);
  sum_sq_.assign(n, 0.0);
  max1_.assign(n, -kInf);
  max2_.assign(n, -kInf);
  min1_.assign(n, kInf);
  min2_.assign(n, kInf);
  argmax_.assign(n, 0);
  argmin_.assign(n, 0);

  valid_points_ = stats::kernels::count_valid(mask_, n);
  CESM_REQUIRE(valid_points_ > 0);

  // Sufficient statistics and leave-one-out extremes. The member loop must
  // run in member order (update_extremes resolves argmax ties by first
  // arrival, and the sum/sum_sq float adds are order-sensitive), so the
  // parallel axis is POINTS: each task owns a disjoint point slice and
  // walks the members in order within it. Per point the arithmetic and its
  // order are exactly the serial loop's, so results are bit-identical at
  // every thread count. The slice width is a fixed multiple of the kernel
  // block (never derived from the worker count) to keep the per-block
  // mask hoisting aligned and the decomposition reproducible.
  constexpr std::size_t kPointGrain = 16 * stats::kernels::kBlock;
  const std::size_t point_chunks = (n + kPointGrain - 1) / kPointGrain;
  const std::span<const std::uint8_t> mask(mask_);
  parallel_for(0, point_chunks, [&](std::size_t c) {
    const std::size_t lo = c * kPointGrain;
    const std::size_t len = std::min(kPointGrain, n - lo);
    const std::span<const std::uint8_t> mask_slice =
        mask.empty() ? mask : mask.subspan(lo, len);
    for (std::size_t m = 0; m < m_count; ++m) {
      const std::span<const float> x(members_[m].data);
      stats::kernels::accumulate_sum_sq(x.subspan(lo, len), mask_slice,
                                        std::span<double>(sum_).subspan(lo, len),
                                        std::span<double>(sum_sq_).subspan(lo, len));
      stats::kernels::update_extremes(
          x.subspan(lo, len), mask_slice, static_cast<std::uint32_t>(m),
          std::span<float>(max1_).subspan(lo, len),
          std::span<float>(max2_).subspan(lo, len),
          std::span<std::uint32_t>(argmax_).subspan(lo, len),
          std::span<float>(min1_).subspan(lo, len),
          std::span<float>(min2_).subspan(lo, len),
          std::span<std::uint32_t>(argmin_).subspan(lo, len));
    }
  });

  // Per-member range and global mean over valid points: one fused
  // min/max/mean kernel pass per member, members in parallel (each writes
  // its own slot).
  ranges_.resize(m_count);
  global_means_.resize(m_count);
  parallel_for(0, m_count, [&](std::size_t m) {
    const stats::kernels::MomentAccum a =
        stats::kernels::moments(std::span<const float>(members_[m].data), mask_);
    ranges_[m] = a.max - a.min;
    global_means_[m] = a.mean;
  });

  // RMSZ distribution (original members), one independent slot per member.
  rmsz_dist_.resize(m_count);
  parallel_for(0, m_count, [&](std::size_t m) {
    rmsz_dist_[m] = rmsz_of(m, members_[m].data);
  });

  // E_nmax distribution (eq. 10): member m's largest pointwise distance to
  // any other member, normalized by member m's own range. Mask hoisted per
  // block; the leave-one-out select is branch-free. Members run in
  // parallel and each member's point scan is a nested parallel_reduce —
  // max is order-independent over finite values, and the chunk grain is a
  // kBlock multiple so the dense fast path stays aligned.
  enmax_dist_.resize(m_count);
  parallel_for(0, m_count, [&](std::size_t m) {
    const std::vector<float>& x = members_[m].data;
    const auto chunk_worst = [&](std::size_t lo, std::size_t hi, double acc) {
      for (std::size_t b = lo; b < hi; b += stats::kernels::kBlock) {
        const std::size_t len = std::min(stats::kernels::kBlock, hi - b);
        const bool dense =
            mask.empty() || stats::kernels::all_valid(mask.subspan(b, len));
        for (std::size_t i = b; i < b + len; ++i) {
          if (!dense && !mask_[i]) continue;
          const float hi_v = (argmax_[i] == m) ? max2_[i] : max1_[i];
          const float lo_v = (argmin_[i] == m) ? min2_[i] : min1_[i];
          const double d =
              std::max(static_cast<double>(hi_v) - static_cast<double>(x[i]),
                       static_cast<double>(x[i]) - static_cast<double>(lo_v));
          acc = std::max(acc, d);
        }
      }
      return acc;
    };
    const double worst =
        parallel_reduce(0, n, 0.0, chunk_worst,
                        [](double a, double b) { return std::max(a, b); },
                        kPointGrain);
    enmax_dist_[m] = ranges_[m] > 0.0 ? worst / ranges_[m] : worst;
  });

  finalize_rmsz_range();
}

void EnsembleStats::finalize_rmsz_range() {
  const auto [lo, hi] = std::minmax_element(rmsz_dist_.begin(), rmsz_dist_.end());
  rmsz_min_ = *lo;
  rmsz_max_ = *hi;
}

double EnsembleStats::rmsz_of(std::size_t m, std::span<const float> data) const {
  CESM_REQUIRE(m < members_.size());
  const std::size_t n = members_[0].size();
  CESM_REQUIRE(data.size() == n);

  // Sub-ensemble {E \ m} statistics via leave-one-out update of the
  // per-point sufficient statistics. The value removed is the *original*
  // member m, even when scoring reconstructed data in its place. Points
  // with degenerate spread — below the float32 representation noise of
  // the mean (e.g. a saturated cloud-fraction point identical across
  // members) — are skipped; see kDegenerateSpreadRelTol.
  const stats::kernels::ZScoreAccum acc = stats::kernels::zscore_sums(
      data, members_[m].data, sum_, sum_sq_, mask_,
      static_cast<double>(members_.size()), kDegenerateSpreadRelTol);
  return rmsz_from_accum(acc);
}

double EnsembleStats::enmax_range() const {
  const auto [lo, hi] = std::minmax_element(enmax_dist_.begin(), enmax_dist_.end());
  return *hi - *lo;
}

namespace {

// Layout version of the EnsembleStats snapshot itself (independent of the
// disk-cache container version): bump on any change to the field set or
// their order below, so stale snapshots deserialize as FormatError and the
// cache regenerates them instead of misreading bytes.
constexpr std::uint32_t kStatsFormatVersion = 1;

template <typename T>
void write_array(ByteWriter& w, const std::vector<T>& v) {
  w.u64(v.size());
  if constexpr (sizeof(T) == 1) {
    w.raw(reinterpret_cast<const std::uint8_t*>(v.data()), v.size());
  } else if constexpr (std::is_same_v<T, float>) {
    w.f32_array(v);
  } else if constexpr (std::is_same_v<T, double>) {
    w.f64_array(v);
  } else {
    w.u32_array(v);
  }
}

template <typename T>
std::vector<T> read_array(ByteReader& r) {
  const std::uint64_t n = r.u64();
  // An adversarially large count would throw in need() anyway, but check
  // against the remaining bytes first so we never attempt the allocation.
  if (n > r.remaining() / sizeof(T)) throw FormatError("array length overruns stream");
  std::vector<T> v(static_cast<std::size_t>(n));
  if constexpr (sizeof(T) == 1) {
    const auto src = r.raw(v.size());
    std::copy(src.begin(), src.end(), v.begin());
  } else if constexpr (std::is_same_v<T, float>) {
    r.f32_array(v);
  } else if constexpr (std::is_same_v<T, double>) {
    r.f64_array(v);
  } else {
    r.u32_array(v);
  }
  return v;
}

}  // namespace

void EnsembleStats::serialize(ByteWriter& w) const {
  w.u32(kStatsFormatVersion);

  // Members: name/shape/fill are identical across members by construction,
  // so store them once.
  const climate::Field& proto = members_[0];
  w.str(proto.name);
  w.u64(proto.shape.dims.size());
  for (std::size_t d : proto.shape.dims) w.u64(d);
  w.u8(proto.fill.has_value() ? 1 : 0);
  if (proto.fill) w.f32(*proto.fill);

  w.u64(members_.size());
  for (const climate::Field& f : members_) write_array(w, f.data);

  write_array(w, mask_);
  w.u64(valid_points_);
  write_array(w, sum_);
  write_array(w, sum_sq_);
  write_array(w, max1_);
  write_array(w, max2_);
  write_array(w, min1_);
  write_array(w, min2_);
  write_array(w, argmax_);
  write_array(w, argmin_);
  write_array(w, rmsz_dist_);
  write_array(w, enmax_dist_);
  write_array(w, ranges_);
  write_array(w, global_means_);
}

EnsembleStats EnsembleStats::deserialize(ByteReader& r) {
  if (r.u32() != kStatsFormatVersion) {
    throw FormatError("EnsembleStats snapshot version mismatch");
  }

  EnsembleStats s;
  const std::string name = r.str();
  comp::Shape shape;
  const std::uint64_t rank = r.u64();
  if (rank > 8) throw FormatError("EnsembleStats snapshot rank implausible");
  for (std::uint64_t i = 0; i < rank; ++i) {
    shape.dims.push_back(static_cast<std::size_t>(r.u64()));
  }
  std::optional<float> fill;
  if (r.u8() != 0) fill = r.f32();

  const std::uint64_t m_count = r.u64();
  if (m_count < 3 || m_count > (1u << 20)) {
    throw FormatError("EnsembleStats snapshot member count implausible");
  }
  const std::size_t n = shape.count();
  s.members_.reserve(static_cast<std::size_t>(m_count));
  for (std::uint64_t m = 0; m < m_count; ++m) {
    climate::Field f{name, shape, read_array<float>(r), fill};
    if (f.data.size() != n) throw FormatError("EnsembleStats member size mismatch");
    s.members_.push_back(std::move(f));
  }

  s.mask_ = read_array<std::uint8_t>(r);
  if (!s.mask_.empty() && s.mask_.size() != n) {
    throw FormatError("EnsembleStats mask size mismatch");
  }
  s.valid_points_ = static_cast<std::size_t>(r.u64());
  s.sum_ = read_array<double>(r);
  s.sum_sq_ = read_array<double>(r);
  s.max1_ = read_array<float>(r);
  s.max2_ = read_array<float>(r);
  s.min1_ = read_array<float>(r);
  s.min2_ = read_array<float>(r);
  s.argmax_ = read_array<std::uint32_t>(r);
  s.argmin_ = read_array<std::uint32_t>(r);
  for (std::size_t len : {s.sum_.size(), s.sum_sq_.size(), s.max1_.size(),
                          s.max2_.size(), s.min1_.size(), s.min2_.size(),
                          s.argmax_.size(), s.argmin_.size()}) {
    if (len != n) throw FormatError("EnsembleStats point-array size mismatch");
  }
  s.rmsz_dist_ = read_array<double>(r);
  s.enmax_dist_ = read_array<double>(r);
  s.ranges_ = read_array<double>(r);
  s.global_means_ = read_array<double>(r);
  for (std::size_t len : {s.rmsz_dist_.size(), s.enmax_dist_.size(),
                          s.ranges_.size(), s.global_means_.size()}) {
    if (len != m_count) throw FormatError("EnsembleStats member-array size mismatch");
  }
  if (s.valid_points_ == 0 || s.valid_points_ > n) {
    throw FormatError("EnsembleStats valid point count implausible");
  }

  s.finalize_rmsz_range();
  return s;
}

std::size_t EnsembleStats::memory_bytes() const {
  const std::size_t n = members_.empty() ? 0 : members_[0].size();
  std::size_t bytes = members_.size() * n * sizeof(float);  // member data
  bytes += mask_.size();
  bytes += (sum_.size() + sum_sq_.size()) * sizeof(double);
  bytes += (max1_.size() + max2_.size() + min1_.size() + min2_.size()) * sizeof(float);
  bytes += (argmax_.size() + argmin_.size()) * sizeof(std::uint32_t);
  bytes += (rmsz_dist_.size() + enmax_dist_.size() + ranges_.size() +
            global_means_.size()) *
           sizeof(double);
  return bytes;
}

}  // namespace cesm::core
