#pragma once
// CESM-PVT ensemble machinery (§4.3, eqs. 6–7 and 10).
//
// Holds one variable's full perturbation ensemble and answers:
//   * RMSZ_X^m — the root-mean-square Z-score of member m against the
//     sub-ensemble {E \ m}  (eqs. 6–7), for the original member or for an
//     arbitrary (e.g. reconstructed) dataset standing in for member m;
//   * the E_nmax distribution (eq. 10) — each member's normalized maximum
//     pointwise distance to the rest of the ensemble;
//   * per-member global means (the PVT range-shift check).
//
// Leave-one-out statistics are computed from per-point sufficient
// statistics (sum and sum of squares), so evaluating any member is O(N)
// rather than O(N·M).

#include <cmath>
#include <utility>
#include <vector>

#include "climate/field.h"
#include "stats/kernels.h"
#include "util/bytes.h"

namespace cesm::core {

/// Spread below this fraction of |mean| is float32 representation noise;
/// z-scores against it are meaningless (eq. 6 degenerate-spread guard).
inline constexpr double kDegenerateSpreadRelTol = 3e-7;

/// RMSZ (eq. 7) from a z-score accumulation — the exact finalization
/// rmsz_of() applies, shared with the streaming path, which accumulates
/// chunk-by-chunk (stats::ZScoreStream).
inline double rmsz_from_accum(const stats::kernels::ZScoreAccum& acc) {
  if (acc.used == 0) return 0.0;
  return std::sqrt(acc.sum_z2 / static_cast<double>(acc.used));
}

class EnsembleStats {
 public:
  /// Takes ownership of all members' fields (same variable, same shape,
  /// same fill layout). Requires at least 3 members.
  explicit EnsembleStats(std::vector<climate::Field> members);

  [[nodiscard]] std::size_t member_count() const { return members_.size(); }
  [[nodiscard]] std::size_t point_count() const { return valid_points_; }
  [[nodiscard]] const climate::Field& member(std::size_t m) const { return members_[m]; }

  /// RMSZ of arbitrary data standing in for member m: each point is
  /// z-scored against the sub-ensemble {E \ m} (eq. 6) and the RMS taken
  /// over points with non-degenerate sub-ensemble spread (eq. 7).
  [[nodiscard]] double rmsz_of(std::size_t m, std::span<const float> data) const;

  /// RMSZ_X^m of the original member m.
  [[nodiscard]] double rmsz(std::size_t m) const { return rmsz_dist_[m]; }

  /// All member RMSZ scores (the Figure 2 histogram).
  [[nodiscard]] const std::vector<double>& rmsz_distribution() const { return rmsz_dist_; }

  /// {min, max} of the RMSZ distribution, precomputed once at build time.
  /// The eq. (8) acceptance window needs this per member per variant;
  /// scanning the distribution there again would be an O(members) rescan
  /// repeated members x variants times.
  [[nodiscard]] std::pair<double, double> rmsz_range() const {
    return {rmsz_min_, rmsz_max_};
  }

  /// E_nmax^{m_X} (eq. 10) for member m.
  [[nodiscard]] double enmax(std::size_t m) const { return enmax_dist_[m]; }

  /// All member E_nmax values (the Figure 3 box plot).
  [[nodiscard]] const std::vector<double>& enmax_distribution() const { return enmax_dist_; }

  /// R_{E_nmax^X}: the range (max - min) of the E_nmax distribution,
  /// the denominator of acceptance eq. (11).
  [[nodiscard]] double enmax_range() const;

  /// Range R_X^m of member m over valid points.
  [[nodiscard]] double member_range(std::size_t m) const { return ranges_[m]; }

  /// Equal-weight global mean of member m over valid points.
  [[nodiscard]] double global_mean(std::size_t m) const { return global_means_[m]; }
  [[nodiscard]] const std::vector<double>& global_means() const { return global_means_; }

  /// Shared validity mask of the ensemble (empty = every point valid;
  /// the constructor enforces that all members agree on it). Lets callers
  /// reuse it for per-member metric passes instead of reallocating
  /// Field::valid_mask() per evaluation.
  [[nodiscard]] std::span<const std::uint8_t> mask() const { return mask_; }

  /// Exact-bit snapshot of the members and every derived product, for the
  /// content-addressed ensemble cache (core/ensemble_cache.h). A
  /// deserialized instance is indistinguishable from a freshly built one:
  /// all floating-point state round-trips via bit casts, so cached and
  /// uncached runs produce bit-identical results.
  void serialize(ByteWriter& w) const;
  /// Inverse of serialize(); throws FormatError on a malformed stream.
  /// (The disk cache additionally checksums entries, so this mostly
  /// guards against version skew and in-memory corruption.)
  [[nodiscard]] static EnsembleStats deserialize(ByteReader& r);

  /// Resident footprint (members + derived arrays) for cache accounting.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  EnsembleStats() = default;  ///< deserialize() fills every member itself

  void build();
  /// Derive the cached rmsz_range() extremes from rmsz_dist_ (shared by
  /// build() and deserialize()).
  void finalize_rmsz_range();

  std::vector<climate::Field> members_;
  std::vector<std::uint8_t> mask_;      // shared validity mask (may be empty)
  std::size_t valid_points_ = 0;

  // Per-point sufficient statistics over all members.
  std::vector<double> sum_;
  std::vector<double> sum_sq_;
  // Per-point extremes with runners-up, for leave-one-out max distances.
  std::vector<float> max1_, max2_, min1_, min2_;
  std::vector<std::uint32_t> argmax_, argmin_;

  std::vector<double> rmsz_dist_;
  std::vector<double> enmax_dist_;
  std::vector<double> ranges_;
  std::vector<double> global_means_;
  double rmsz_min_ = 0.0;
  double rmsz_max_ = 0.0;
};

}  // namespace cesm::core
