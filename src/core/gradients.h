#pragma once
// Field-gradient verification — the paper's §6 future work: "We plan to
// extend our verification metrics to evaluate the impact of compression
// ... on field gradients."
//
// Gradients amplify high-frequency compression artifacts that pointwise
// metrics average away (block boundaries in APAX, window seams in
// ISABELA, quantization staircase in GRIB2). We compute centred zonal and
// meridional finite differences on the lat-lon grid and score the
// reconstructed gradient field against the original with the §4.2 metrics.

#include "climate/field.h"
#include "climate/grid.h"
#include "core/metrics.h"

namespace cesm::core {

/// Zonal (d/dlon, periodic) and meridional (d/dlat, one-sided at the
/// poles) centred differences of each level of a field, in units per
/// radian. Fill values propagate: a gradient touching a fill point is
/// itself marked fill.
struct GradientFields {
  std::vector<float> zonal;
  std::vector<float> meridional;
  std::vector<std::uint8_t> valid;  ///< shared mask (empty = all valid)
};

GradientFields compute_gradients(std::span<const float> data,
                                 const climate::Grid& grid,
                                 std::optional<float> fill = std::nullopt);

/// §4.2 metrics on the gradient fields of original vs reconstructed data.
struct GradientMetrics {
  ErrorMetrics zonal;
  ErrorMetrics meridional;

  /// The worse (smaller) of the two Pearson correlations — the quantity a
  /// gradient-acceptance test would bound.
  [[nodiscard]] double worst_pearson() const {
    return zonal.pearson < meridional.pearson ? zonal.pearson : meridional.pearson;
  }
};

GradientMetrics compare_gradients(const climate::Field& original,
                                  std::span<const float> reconstructed,
                                  const climate::Grid& grid);

}  // namespace cesm::core
