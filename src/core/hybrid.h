#pragma once
// Per-variable customization: the "hybrid" methods of §5.4 (Tables 7–8).
//
// For each of the four families, each variable gets the most aggressive
// variant of that family that passes all four acceptance tests; variables
// no lossy variant can handle fall back to the family's lossless option
// (fpzip-32) or to NetCDF-4 deflate (ISABELA, GRIB2 and APAX have no
// usable lossless mode). The construction reuses the verdicts from a
// SuiteResults sweep, exactly as the paper derives Table 7 from the
// experiments behind Table 6.

#include <map>
#include <string>
#include <vector>

#include "core/suite.h"

namespace cesm::core {

/// One variable's chosen variant within a family.
struct HybridSelection {
  std::string variable;
  std::string variant;        ///< chosen variant (possibly "NetCDF-4"/"fpzip-32")
  double cr = 1.0;
  double pearson = 1.0;
  double nrmse = 0.0;
  double enmax = 0.0;
  bool lossless_fallback = false;
};

/// Table 7 column (plus the Table 8 composition) for one family.
struct HybridSummary {
  std::string family;
  double avg_cr = 1.0;
  double best_cr = 1.0;
  double worst_cr = 1.0;
  double avg_pearson = 1.0;
  double avg_nrmse = 0.0;
  double avg_enmax = 0.0;
  std::map<std::string, std::size_t> variant_counts;  ///< Table 8 rows
  std::vector<HybridSelection> selections;
};

/// Build the hybrid method for `family` ("GRIB2", "ISABELA", "fpzip",
/// "APAX") or the all-lossless baseline ("NetCDF-4", the "NC" column).
HybridSummary build_hybrid(const SuiteResults& results, const std::string& family);

/// All five Table 7 columns in paper order.
std::vector<HybridSummary> build_all_hybrids(const SuiteResults& results);

}  // namespace cesm::core
