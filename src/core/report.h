#pragma once
// Report rendering: fixed-width tables, scientific-notation formatting,
// and ASCII renderings of the paper's box plots, histograms and
// confidence-rectangle scatters, so each bench binary prints the same
// rows/series the corresponding paper table or figure shows.

#include <cstddef>
#include <string>
#include <vector>

#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "stats/regression.h"

namespace cesm::core {

/// Compact scientific notation in the paper's style: "3.6e-4".
std::string format_sci(double value, int significant = 2);

/// Fixed-point with `digits` decimals.
std::string format_fixed(double value, int digits = 2);

/// Simple fixed-width text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment; first column left-aligned, the rest
  /// right-aligned.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One labelled box of a Figure-1/3-style plot.
struct LabelledBox {
  std::string label;
  stats::BoxSummary box;
};

/// Extra point markers overlaid on a box/histogram plot (Figures 2 and 3
/// mark each compression method's value on the ensemble distribution).
struct Marker {
  std::string label;
  double value = 0.0;
};

/// Render labelled boxes on a shared log10 axis (the paper's Figure 1
/// y-axes are logarithmic). Values must be positive; zeros clamp to the
/// axis minimum.
std::string render_boxplot_log(const std::vector<LabelledBox>& boxes,
                               std::size_t width = 64);

/// Render a histogram with markers (Figure 2 style).
std::string render_histogram(const stats::Histogram& hist,
                             const std::vector<Marker>& markers,
                             std::size_t width = 56);

/// Render confidence rectangles in (slope, intercept) space (Figure 4
/// style): textual extents plus a pass/ideal annotation per method.
struct LabelledRect {
  std::string label;
  stats::ConfidenceRect rect;
  bool pass = false;
};
std::string render_bias_rects(const std::vector<LabelledRect>& rects);

}  // namespace cesm::core
