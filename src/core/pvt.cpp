#include "core/pvt.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"
#include "util/scheduler.h"
#include "util/trace.h"

namespace cesm::core {

PvtVerifier::PvtVerifier(const EnsembleStats& stats, PvtThresholds thresholds)
    : stats_(stats), thresholds_(thresholds) {}

MemberEvaluation finish_member_evaluation(std::size_t member, double cr,
                                          const ErrorMetrics& metrics,
                                          double rmsz_original,
                                          double rmsz_reconstructed,
                                          std::pair<double, double> rmsz_range,
                                          double enmax_range,
                                          const PvtThresholds& thresholds) {
  MemberEvaluation eval;
  eval.member = member;
  eval.cr = cr;
  eval.metrics = metrics;
  eval.rmsz_original = rmsz_original;
  eval.rmsz_reconstructed = rmsz_reconstructed;
  eval.rmsz_diff = std::fabs(rmsz_original - rmsz_reconstructed);
  const auto [lo, hi] = rmsz_range;
  const double slack = thresholds.rmsz_range_slack * (hi - lo);
  eval.rmsz_in_distribution =
      rmsz_reconstructed >= lo - slack && rmsz_reconstructed <= hi + slack;
  eval.enmax_ratio =
      enmax_range > 0.0 ? metrics.e_nmax / enmax_range : metrics.e_nmax;
  eval.rho_pass = metrics.pearson >= thresholds.pearson_min;
  eval.rmsz_pass =
      eval.rmsz_in_distribution && eval.rmsz_diff <= thresholds.rmsz_diff_max;
  eval.enmax_pass = eval.enmax_ratio <= thresholds.enmax_ratio_max;
  return eval;
}

void fold_member_flags(VariableVerdict& verdict) {
  verdict.rho_pass = verdict.rmsz_pass = verdict.enmax_pass = true;
  double cr_sum = 0.0;
  for (const MemberEvaluation& eval : verdict.members) {
    verdict.rho_pass = verdict.rho_pass && eval.rho_pass;
    verdict.rmsz_pass = verdict.rmsz_pass && eval.rmsz_pass;
    verdict.enmax_pass = verdict.enmax_pass && eval.enmax_pass;
    cr_sum += eval.cr;
  }
  verdict.mean_cr = cr_sum / static_cast<double>(verdict.members.size());
}

MemberEvaluation PvtVerifier::evaluate_member(const comp::Codec& codec,
                                              std::size_t member) const {
  CESM_REQUIRE(member < stats_.member_count());
  const climate::Field& original = stats_.member(member);

  const comp::RoundTrip rt =
      comp::planned_round_trip(plans_, codec, original.data, original.shape, member);
  trace::counter_add("pvt.member_roundtrips", 1);
  // Reuse the ensemble's shared validity mask (every member agrees on it
  // by EnsembleStats' construction) instead of reallocating
  // Field::valid_mask() for each of the variants x members evaluations.
  const ErrorMetrics metrics =
      compare_fields(original.data, rt.reconstructed, stats_.mask());

  // Distribution extremes precomputed once at EnsembleStats build time;
  // rescanning the distribution here would repeat an O(members) pass for
  // every (variant, test member) evaluation.
  return finish_member_evaluation(member, rt.cr, metrics, stats_.rmsz(member),
                                  stats_.rmsz_of(member, rt.reconstructed),
                                  stats_.rmsz_range(), stats_.enmax_range(),
                                  thresholds_);
}

void PvtVerifier::reconstructed_rmsz_into(const comp::Codec& codec,
                                          std::span<double> scores,
                                          std::span<const MemberEvaluation> known) const {
  trace::Span span("pvt.bias_sweep");
  const std::size_t m_count = stats_.member_count();
  CESM_REQUIRE(scores.size() == m_count);

  // Seed the scores the test-member evaluations already computed: the
  // codec is deterministic, so re-compressing member m would reproduce
  // the identical reconstruction and the identical RMSZ. Before this
  // every test member was round-tripped twice per variant (once in
  // evaluate_member, once here).
  const std::span<std::uint8_t> seeded = scratch_.get<std::uint8_t>(1, m_count);
  std::fill(seeded.begin(), seeded.end(), std::uint8_t{0});
  std::uint64_t reused = 0;
  for (const MemberEvaluation& eval : known) {
    if (eval.member < m_count && seeded[eval.member] == 0) {
      scores[eval.member] = eval.rmsz_reconstructed;
      seeded[eval.member] = 1;
      ++reused;
    }
  }
  trace::counter_add("pvt.bias_reused", reused);

  const std::span<std::size_t> pending = scratch_.get<std::size_t>(2, m_count);
  std::size_t pending_count = 0;
  for (std::size_t m = 0; m < m_count; ++m) {
    if (seeded[m] == 0) pending[pending_count++] = m;
  }

  // Remaining members round-trip in fixed-width batches into one resident
  // arena buffer (decode_into, no per-member recon vector). Each member
  // writes its own score slot and the batch boundaries never depend on
  // the worker count, so the sweep is bit-deterministic at any thread
  // count. Encoding still produces a transient per-member stream — the
  // Codec::encode interface returns ownership — but the (much larger)
  // reconstruction side is allocation-free in steady state.
  const std::size_t n = stats_.member(0).size();
  const std::span<float> recon = scratch_.get<float>(3, kBiasBatch * n);
  for (std::size_t lo = 0; lo < pending_count; lo += kBiasBatch) {
    const std::size_t len = std::min(kBiasBatch, pending_count - lo);
    parallel_for(0, len, [&](std::size_t i) {
      const std::size_t m = pending[lo + i];
      const climate::Field& original = stats_.member(m);
      const Bytes stream = plans_ != nullptr
                               ? plans_->encode(codec, original.data, original.shape, m)
                               : codec.encode(original.data, original.shape);
      const std::span<float> out = recon.subspan(i * n, n);
      codec.decode_into(stream, out);
      trace::counter_add("pvt.member_roundtrips", 1);
      scores[m] = stats_.rmsz_of(m, out);
    });
  }
}

std::vector<double> PvtVerifier::reconstructed_rmsz(const comp::Codec& codec) const {
  std::vector<double> scores(stats_.member_count());
  reconstructed_rmsz_into(codec, scores, {});
  return scores;
}

VariableVerdict PvtVerifier::verify(const comp::Codec& codec,
                                    std::span<const std::size_t> test_members,
                                    bool run_bias) const {
  CESM_REQUIRE(!test_members.empty());
  trace::Span span("pvt.verify");
  VariableVerdict verdict;
  verdict.variable = stats_.member(0).name;
  verdict.codec = codec.name();

  // Evaluate test members in parallel into per-member slots (each
  // evaluation compresses + scores one field independently), then fold the
  // pass flags and CR mean serially in member order — same results as the
  // old serial loop, bit for bit, at any thread count.
  verdict.members.resize(test_members.size());
  parallel_for(0, test_members.size(), [&](std::size_t i) {
    verdict.members[i] = evaluate_member(codec, test_members[i]);
  });
  fold_member_flags(verdict);

  if (run_bias) {
    // Arena-backed score buffer: warmed on the first verify, reused
    // allocation-free for every subsequent codec variant.
    const std::span<double> recon_scores =
        scratch_.get<double>(0, stats_.member_count());
    reconstructed_rmsz_into(codec, recon_scores, verdict.members);
    verdict.bias = bias_test(stats_.rmsz_distribution(), recon_scores,
                             thresholds_.bias_confidence);
    verdict.bias_pass = verdict.bias.pass;
    verdict.bias_evaluated = true;
  } else {
    verdict.bias_pass = true;  // not evaluated: do not veto
  }
  return verdict;
}

std::vector<std::size_t> PvtVerifier::pick_members(std::size_t count,
                                                   std::size_t member_count,
                                                   std::uint64_t seed) {
  CESM_REQUIRE(count <= member_count);
  Pcg32 rng(seed);
  std::vector<std::size_t> all(member_count);
  for (std::size_t i = 0; i < member_count; ++i) all[i] = i;
  // Partial Fisher-Yates.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + rng.bounded(static_cast<std::uint32_t>(member_count - i));
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace cesm::core
