#pragma once
// Out-of-core full-grid verification (the streaming leg).
//
// A paper-scale variable (101 members of a full CAM grid) does not fit
// in memory next to its derived statistics, so this module runs the §4
// methodology without ever materializing a full ensemble:
//
//   1. stage_variable — synthesis writes every member chunk-by-chunk into
//      a CNK1 spill store (ncio/chunkstore.h), members in parallel on the
//      work-stealing scheduler;
//   2. StreamingStats — two read passes over the store build the same
//      sufficient statistics EnsembleStats holds (per-point sum/sum², the
//      leave-one-out extremes, the RMSZ and E_nmax distributions), minus
//      the resident member fields;
//   3. run_variable_streaming — codec verification round-trips each chunk
//      through the wrapped variant's inner codec and feeds the stats
//      streaming kernels (stats/kernels.h), with the next chunk read
//      prefetched on the scheduler while the current one is processed.
//
// Bitwise parity is by construction, not by tolerance: the streaming
// kernels re-align chunk feeds to the one-shot kernels' block grid, the
// chunk partition is the same ChunkedCodec partition an in-core run with
// SuiteConfig::chunk_elems uses, and every finalization (Pearson, RMSZ,
// error metrics, pass flags) goes through the same shared helpers. An
// in-core run_variable with config.chunk_elems == OocConfig::chunk_elems
// therefore produces a bit-identical VariableResult — the property the
// full-grid bench gate asserts.
//
// Memory honesty: every slab the pipeline allocates (chunk buffers,
// per-point arrays, codec scratch allowances) is charged to a
// util::MemoryBudget; with CESM_MEM_MB set, exceeding the cap is an
// error, not a slowdown.
//
// Multi-variable concurrency: run_suite_streaming pipelines variables as
// concurrent jobs (OocConfig::parallel_variables), all charging ONE shared
// MemoryBudget. Each variable computes its full working-set bound up front
// (ooc_working_set_bytes) and acquires it as a single all-or-nothing
// reservation — a variable that does not fit *parks* behind the budget's
// FIFO admission queue instead of throwing, so CESM_MEM_MB stays a hard
// cap under contention, admission order cannot starve a large variable,
// and (because no admitted variable ever waits for more memory) the
// schedule cannot deadlock. Results are written to fixed slots, so the
// suite CSV is byte-identical to the serial run at any job count.
//
// Spill reuse: with OocConfig::reuse_spill, spill files are
// content-addressed on the same (EnsembleSpec, VariableSpec) key schema as
// EnsembleCache (plus the chunk partition and spill format version), so a
// later suite run finds its staged members on disk, validates the CNK1 v2
// checksums, and skips synthesis entirely. A spill that fails validation —
// or fails mid-run after being reused — is deleted, counted, and restaged
// by the guarded retry, never trusted. Non-reusable runs stage into a
// unique per-run subdirectory (SpillSession) so concurrent processes
// sharing one spill_dir cannot collide on per-variable filenames.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "climate/ensemble.h"
#include "core/suite.h"
#include "ncio/chunkstore.h"
#include "stats/descriptive.h"
#include "util/memory.h"

namespace cesm::core {

struct OocConfig {
  /// Target elements per chunk (the ChunkedCodec partition). Must equal
  /// the in-core leg's SuiteConfig::chunk_elems for parity; >= 1024.
  std::size_t chunk_elems = 1 << 16;
  /// Directory for CNK1 spill files (must exist and be writable).
  std::string spill_dir = "/tmp";
  /// Logical working-set cap in bytes; 0 means "account only". Callers
  /// usually seed this from util::memory_budget_bytes() (CESM_MEM_MB).
  std::uint64_t memory_budget_bytes = 0;
  /// Keep the spill file after the variable finishes (debugging).
  bool keep_spill = false;
  /// Concurrent variable jobs in run_suite_streaming: 0 = auto (one job
  /// per scheduler worker), 1 = serial, N = exactly N jobs. All jobs
  /// charge one shared MemoryBudget via working-set reservations.
  std::size_t parallel_variables = 0;
  /// Content-address spill files on (EnsembleSpec, VariableSpec,
  /// chunk partition) and keep them after the run: a later run reuses a
  /// staged spill (after checksum validation) instead of re-synthesizing.
  bool reuse_spill = false;
  /// Byte budget for the reusable spill store in spill_dir (0 = no
  /// limit). After each variable, oldest spills are evicted until the
  /// store fits — same mtime-ordered policy as the DiskCache tier.
  std::uint64_t spill_budget_bytes = 0;
  /// Caller-owned shared admission budget for run_suite_streaming; when
  /// null the suite builds its own from memory_budget_bytes. Exposed so
  /// tests and benches can observe peak/waits across a run.
  util::MemoryBudget* shared_budget = nullptr;
  /// Byte cap for the per-variable encode-prep plan cache (compress/prep.h)
  /// of the streaming leg, keyed per (member, chunk). Deliberately small:
  /// plans are charged to the variable's own MemoryBudget — one that does
  /// not fit is simply not cached — so the CESM_MEM_MB guarantee is
  /// unaffected. 0 disables plan sharing. (SuiteConfig::plan_cache_bytes
  /// is the in-core knob and is ignored here.)
  std::size_t plan_cache_bytes = 4ull << 20;
  /// Everything else (thresholds, member picks, bias policy, retries).
  /// `suite.chunk_elems` is ignored here: the streaming leg always uses
  /// OocConfig::chunk_elems.
  SuiteConfig suite;
};

/// Upper bound on the resident working set of one streaming variable run
/// at the current scheduler width: the per-point statistic planes, the
/// per-member moment slots, and the widest per-lane chunk-buffer
/// allowance of any phase. This is the exact peak the per-variable charge
/// sequence can reach, so reserving it up front on a shared budget
/// guarantees the variable never over-draws its admission.
std::uint64_t ooc_working_set_bytes(const climate::EnsembleGenerator& ensemble,
                                    const climate::VariableSpec& spec,
                                    std::size_t chunk_elems);

/// Content hash of everything that determines a staged spill's bytes:
/// the EnsembleCache key schema for (spec, var) plus the chunk partition
/// and the CNK1 format version.
std::uint64_t spill_key(const climate::EnsembleSpec& spec,
                        const climate::VariableSpec& var, std::size_t chunk_elems);

/// Where a reusable spill for `key` lives: "<dir>/<var>-<16-hex-key>.cnk1".
std::string spill_path(const std::string& dir, const std::string& variable,
                       std::uint64_t key);

/// Unique per-run spill subdirectory ("<base>/cesm-spill-<pid>-<token>"),
/// created on construction and removed recursively on destruction unless
/// asked to keep it. The fix for concurrent processes sharing one
/// spill_dir: per-(member, variable) filenames only ever collide inside a
/// single run's private directory, and unwinding (including a signal
/// drain) cleans the whole directory up.
class SpillSession {
 public:
  explicit SpillSession(const std::string& base_dir, bool keep = false);
  ~SpillSession();

  SpillSession(const SpillSession&) = delete;
  SpillSession& operator=(const SpillSession&) = delete;

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  bool keep_ = false;
};

/// Phase breakdown and I/O counters of one streaming variable run — the
/// BENCH_suite.json streaming-phase record.
struct OocPhaseStats {
  double stage_seconds = 0.0;   ///< synthesis -> spill store
  double stats_seconds = 0.0;   ///< StreamingStats two-pass build
  double verify_seconds = 0.0;  ///< tuning + all variant verdicts
  std::uint64_t bytes_spilled = 0;        ///< CNK1 payload written
  std::uint64_t peak_logical_bytes = 0;   ///< MemoryBudget high-water mark
  std::uint64_t budget_cap_bytes = 0;     ///< the cap charged against (0 = none)
};

/// The EnsembleStats sufficient statistics, built from a chunk store in
/// two bounded-memory read passes instead of from resident members.
/// Accessors mirror EnsembleStats so the shared finalization helpers
/// (finish_member_evaluation, rmsz_from_accum, ...) see identical inputs.
class StreamingStats {
 public:
  /// Builds from `store`. Pass 1 (parallel over chunks) derives the
  /// shared validity mask and accumulates per-point sum/sum² and the
  /// leave-one-out extremes, member-major per point. Pass 2 (parallel
  /// over members) streams each member once more for its moments, RMSZ
  /// and E_nmax. `budget` is charged for every resident array.
  StreamingStats(const ncio::ChunkStoreReader& store, util::MemoryBudget& budget);

  [[nodiscard]] std::size_t member_count() const { return member_count_; }
  [[nodiscard]] std::size_t point_count() const { return valid_points_; }
  [[nodiscard]] std::span<const std::uint8_t> mask() const { return mask_; }
  [[nodiscard]] std::span<const double> sum() const { return sum_; }
  [[nodiscard]] std::span<const double> sum_sq() const { return sum_sq_; }

  [[nodiscard]] double rmsz(std::size_t m) const { return rmsz_dist_[m]; }
  [[nodiscard]] const std::vector<double>& rmsz_distribution() const { return rmsz_dist_; }
  [[nodiscard]] std::pair<double, double> rmsz_range() const {
    return {rmsz_min_, rmsz_max_};
  }
  [[nodiscard]] double enmax(std::size_t m) const { return enmax_dist_[m]; }
  [[nodiscard]] const std::vector<double>& enmax_distribution() const { return enmax_dist_; }
  [[nodiscard]] double enmax_range() const;

  [[nodiscard]] double member_range(std::size_t m) const { return ranges_[m]; }
  [[nodiscard]] double global_mean(std::size_t m) const { return global_means_[m]; }
  [[nodiscard]] const std::vector<double>& global_means() const { return global_means_; }

  /// The §4.1 summary of member m over valid points — bit-identical to
  /// summarize(member.data, mask) on the in-core leg.
  [[nodiscard]] const stats::Summary& member_summary(std::size_t m) const {
    return member_summary_[m];
  }

 private:
  std::size_t member_count_ = 0;
  std::size_t n_ = 0;
  std::vector<std::uint8_t> mask_;  // normalized: empty when all valid
  std::size_t valid_points_ = 0;
  std::vector<double> sum_, sum_sq_;
  std::vector<float> max1_, max2_, min1_, min2_;
  std::vector<std::uint32_t> argmax_, argmin_;
  std::vector<stats::Summary> member_summary_;
  std::vector<double> rmsz_dist_, enmax_dist_, ranges_, global_means_;
  double rmsz_min_ = 0.0;
  double rmsz_max_ = 0.0;
};

/// Synthesize one variable's full ensemble into a CNK1 store at `path`
/// (members in parallel, chunk-granular writes; never more than one chunk
/// of one member resident per worker). The chunk partition is the
/// ChunkedCodec partition for `chunk_elems`. Synthesis runs under an
/// "ensemble.synthesize" span, so a trace with zero such spans proves a
/// warm run never regenerated data.
void stage_variable_at(const climate::EnsembleGenerator& ensemble,
                       const climate::VariableSpec& spec, const std::string& path,
                       std::size_t chunk_elems, util::MemoryBudget& budget);

/// stage_variable_at with the classic `dir/<variable>.cnk1` naming.
/// Returns the store path.
std::string stage_variable(const climate::EnsembleGenerator& ensemble,
                           const climate::VariableSpec& spec, const std::string& dir,
                           std::size_t chunk_elems, util::MemoryBudget& budget);

/// The streaming twin of run_variable: same seeds, same thresholds, same
/// codecs (chunk-wrapped), bit-identical VariableResult to an in-core
/// run with SuiteConfig::chunk_elems == config.chunk_elems — under a
/// working set of chunks instead of members. `phases`, when non-null,
/// receives the phase breakdown.
///
/// `shared`, when non-null, is a suite-level admission budget: the
/// variable reserves its full ooc_working_set_bytes on it (parking under
/// contention) and runs its fine-grained charges against a private
/// sub-budget capped at that reservation, so the shared cap stays a hard
/// bound no matter how many variables are in flight. When null the
/// variable budgets directly against config.memory_budget_bytes with the
/// PR 8 fail-fast semantics.
VariableResult run_variable_streaming(const climate::EnsembleGenerator& ensemble,
                                      const climate::VariableSpec& spec,
                                      const OocConfig& config,
                                      OocPhaseStats* phases = nullptr,
                                      util::MemoryBudget* shared = nullptr);

/// Streaming twin of run_suite: variables stream as concurrent jobs
/// (config.parallel_variables) under one shared admission budget, with
/// the same guarded retry/containment policy as run_suite. Results land
/// in catalog order regardless of job count — the CSV is byte-identical
/// to a serial run.
SuiteResults run_suite_streaming(const climate::EnsembleGenerator& ensemble,
                                 const OocConfig& config,
                                 std::vector<std::string> variables = {});

}  // namespace cesm::core
