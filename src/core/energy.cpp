#include "core/energy.h"

#include <cmath>

#include "stats/descriptive.h"
#include "util/error.h"

namespace cesm::core {

double global_mean_weighted(const climate::Field& field, const climate::Grid& grid) {
  const std::size_t ncol = grid.columns();
  CESM_REQUIRE(field.size() % ncol == 0);
  const std::size_t levels = field.size() / ncol;
  const std::vector<std::uint8_t> mask = field.valid_mask();

  // Average level means (area-weighted within each level).
  double total = 0.0;
  for (std::size_t l = 0; l < levels; ++l) {
    total += stats::weighted_mean(
        std::span<const float>(field.data).subspan(l * ncol, ncol),
        grid.area_weights(),
        mask.empty() ? std::span<const std::uint8_t>{}
                     : std::span<const std::uint8_t>(mask).subspan(l * ncol, ncol));
  }
  return total / static_cast<double>(levels);
}

EnergyBudget energy_budget(const climate::EnsembleGenerator& ens, std::uint32_t member) {
  EnergyBudget b;
  b.fsnt = global_mean_weighted(ens.field("FSNT", member), ens.grid());
  b.flnt = global_mean_weighted(ens.field("FLNT", member), ens.grid());
  return b;
}

BudgetDriftResult energy_budget_drift(const climate::EnsembleGenerator& ens,
                                      const comp::Codec& codec, std::uint32_t member,
                                      std::size_t spread_members, double tolerance) {
  CESM_REQUIRE(spread_members >= 3);
  BudgetDriftResult result;
  result.original = energy_budget(ens, member);

  const auto reconstructed_mean = [&](const char* name) {
    climate::Field f = ens.field(name, member);
    const comp::RoundTrip rt = comp::round_trip(codec, f.data, f.shape);
    climate::Field recon = f;
    recon.data = rt.reconstructed;
    return global_mean_weighted(recon, ens.grid());
  };
  result.reconstructed.fsnt = reconstructed_mean("FSNT");
  result.reconstructed.flnt = reconstructed_mean("FLNT");
  result.imbalance_drift =
      std::fabs(result.reconstructed.imbalance() - result.original.imbalance());

  // Natural spread of the imbalance across ensemble members.
  std::vector<double> imbalances;
  for (std::uint32_t m = 0; m < spread_members; ++m) {
    imbalances.push_back(energy_budget(ens, m).imbalance());
  }
  const stats::BoxSummary box = stats::box_summary(imbalances);
  result.ensemble_spread = box.hi - box.lo;
  result.pass = result.imbalance_drift <= tolerance * result.ensemble_spread;
  return result;
}

}  // namespace cesm::core
