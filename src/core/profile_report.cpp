#include "core/profile_report.h"

#include <cstdio>
#include <fstream>

#include "util/error.h"

namespace cesm::core {

namespace {

void json_escape(const std::string& s, std::string& out) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_seconds(double seconds, std::string& out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9f", seconds);
  out += buf;
}

void append_stats_fields(const trace::SpanStats& s, std::string& out) {
  out += "\"count\": " + std::to_string(s.count) + ", \"total_s\": ";
  append_seconds(s.total_seconds(), out);
  out += ", \"mean_s\": ";
  append_seconds(s.mean_seconds(), out);
  out += ", \"max_s\": ";
  append_seconds(s.max_seconds(), out);
}

void append_node_json(const trace::ReportNode& node, std::string& out) {
  out += "{\"label\": \"";
  json_escape(node.label, out);
  out += "\", ";
  append_stats_fields(node.stats, out);
  out += ", \"children\": [";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out += ", ";
    append_node_json(node.children[i], out);
  }
  out += "]}";
}

void append_node_text(const trace::ReportNode& node, int depth, std::string& out) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += node.label;
  if (node.stats.count > 0) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "  count=%llu total=%.3fs mean=%.6fs max=%.6fs",
                  static_cast<unsigned long long>(node.stats.count),
                  node.stats.total_seconds(), node.stats.mean_seconds(),
                  node.stats.max_seconds());
    out += buf;
  }
  out += '\n';
  for (const trace::ReportNode& c : node.children) append_node_text(c, depth + 1, out);
}

}  // namespace

std::string profile_json(const trace::ReportNode& tree,
                         const std::map<std::string, trace::SpanStats>& aggregates,
                         const std::map<std::string, std::uint64_t>& counters) {
  std::string out = "{\n\"schema\": \"cesmcomp-profile-1\",\n\"spans\": ";
  append_node_json(tree, out);
  out += ",\n\"aggregates\": [";
  bool first = true;
  for (const auto& [label, stats] : aggregates) {
    if (!first) out += ", ";
    first = false;
    out += "\n{\"label\": \"";
    json_escape(label, out);
    out += "\", ";
    append_stats_fields(stats, out);
    out += "}";
  }
  out += "\n],\n\"counters\": {";
  first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    json_escape(name, out);
    out += "\": " + std::to_string(value);
  }
  out += "\n}\n}\n";
  return out;
}

std::string profile_json() {
  return profile_json(trace::collect_tree(), trace::aggregate_by_label(),
                      trace::counters());
}

std::string profile_text(const trace::ReportNode& tree,
                         const std::map<std::string, std::uint64_t>& counters) {
  std::string out;
  append_node_text(tree, 0, out);
  if (!counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : counters) {
      out += "  " + name + " = " + std::to_string(value) + '\n';
    }
  }
  return out;
}

std::string profile_text() {
  return profile_text(trace::collect_tree(), trace::counters());
}

void write_profile_json(const std::string& path) {
  const std::string json = profile_json();
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw IoError("cannot open profile output: " + path);
  f << json;
  if (!f) throw IoError("profile write failed: " + path);
}

}  // namespace cesm::core
