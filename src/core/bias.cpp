#include "core/bias.h"

#include <algorithm>
#include <cmath>

namespace cesm::core {

BiasResult bias_test(std::span<const double> rmsz_original,
                     std::span<const double> rmsz_reconstructed,
                     double confidence) {
  BiasResult r;
  r.fit = stats::fit_linear(rmsz_original, rmsz_reconstructed);
  r.rect = stats::confidence_rect(r.fit, confidence);
  // s_I = 1 (ideal slope); s_WC = the bound of the confidence interval
  // farthest from the ideal.
  r.slope_distance =
      std::max(std::fabs(1.0 - r.rect.slope_lo), std::fabs(1.0 - r.rect.slope_hi));
  r.pass = r.slope_distance <= kBiasSlopeTolerance;
  r.contains_ideal = r.rect.contains(1.0, 0.0);
  return r;
}

}  // namespace cesm::core
