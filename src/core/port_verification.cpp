#include "core/port_verification.h"

#include <algorithm>

#include "stats/descriptive.h"
#include "util/error.h"

namespace cesm::core {

PortVerdict verify_port_variable(const EnsembleStats& trusted,
                                 std::span<const climate::Field> new_runs,
                                 const PortVerificationOptions& options) {
  CESM_REQUIRE(!new_runs.empty());
  PortVerdict verdict;
  verdict.variable = trusted.member(0).name;

  const auto& dist = trusted.rmsz_distribution();
  const auto [lo_it, hi_it] = std::minmax_element(dist.begin(), dist.end());
  verdict.rmsz_lo = *lo_it;
  verdict.rmsz_hi = *hi_it;
  const double slack = options.rmsz_range_slack * (verdict.rmsz_hi - verdict.rmsz_lo);

  const auto& gmeans = trusted.global_means();
  const auto [gm_lo_it, gm_hi_it] = std::minmax_element(gmeans.begin(), gmeans.end());
  const double gm_lo = *gm_lo_it;
  const double gm_hi = *gm_hi_it;
  const double gm_slack = options.mean_shift_tolerance * (gm_hi - gm_lo);

  verdict.rmsz_pass = true;
  verdict.global_mean_pass = true;
  for (const climate::Field& run : new_runs) {
    CESM_REQUIRE(run.size() == trusted.member(0).size());
    // The new run is not a member of the trusted ensemble; score it
    // against the sub-ensemble excluding member 0 (any exclusion gives an
    // (M-1)-member reference).
    const double rmsz = trusted.rmsz_of(0, run.data);
    verdict.worst_new_rmsz = std::max(verdict.worst_new_rmsz, rmsz);
    if (rmsz < verdict.rmsz_lo - slack || rmsz > verdict.rmsz_hi + slack) {
      verdict.rmsz_pass = false;
    }

    const std::vector<std::uint8_t> mask = run.valid_mask();
    const double gm = stats::mean(run.data, mask);
    const double shift = gm < gm_lo ? gm_lo - gm : (gm > gm_hi ? gm - gm_hi : 0.0);
    verdict.worst_mean_shift = std::max(verdict.worst_mean_shift, shift);
    if (shift > gm_slack) verdict.global_mean_pass = false;
  }
  return verdict;
}

std::vector<PortVerdict> verify_port(const climate::EnsembleGenerator& trusted,
                                     std::span<const std::uint32_t> new_member_ids,
                                     std::vector<std::string> variables,
                                     std::size_t variable_limit,
                                     const PortVerificationOptions& options) {
  CESM_REQUIRE(!new_member_ids.empty());
  if (variables.empty()) {
    for (const climate::VariableSpec& v : trusted.catalog()) {
      if (variables.size() >= variable_limit) break;
      variables.push_back(v.name);
    }
  }

  std::vector<PortVerdict> verdicts;
  for (const std::string& name : variables) {
    const climate::VariableSpec& spec = trusted.variable(name);
    const EnsembleStats stats(trusted.ensemble_fields(spec));
    std::vector<climate::Field> runs;
    runs.reserve(new_member_ids.size());
    for (std::uint32_t id : new_member_ids) {
      runs.push_back(trusted.field(spec, id));
    }
    verdicts.push_back(verify_port_variable(stats, runs, options));
  }
  return verdicts;
}

}  // namespace cesm::core
