#pragma once
// Bias detection (§4.3, eq. 9; Figure 4).
//
// All 101 ensemble members are compressed and reconstructed; for each
// variable the reconstructed ensemble's RMSZ scores are regressed on the
// original ensemble's. An unbiased reconstruction gives slope 1 and
// intercept 0. The acceptance rule evaluates the 95 % confidence region:
// the worst-case slope must lie within 0.05 of the ideal slope 1.

#include <span>

#include "stats/regression.h"

namespace cesm::core {

struct BiasResult {
  stats::LinearFit fit;             ///< RMSZ(recon) on RMSZ(orig)
  stats::ConfidenceRect rect;       ///< 95 % region, Figure 4's rectangle
  double slope_distance = 0.0;      ///< |s_I - s_WC| of eq. (9)
  bool pass = false;                ///< slope_distance <= 0.05
  bool contains_ideal = false;      ///< rectangle contains (1, 0)
};

/// Acceptance threshold of eq. (9).
inline constexpr double kBiasSlopeTolerance = 0.05;

/// Evaluate the bias test from paired RMSZ scores (one pair per member).
BiasResult bias_test(std::span<const double> rmsz_original,
                     std::span<const double> rmsz_reconstructed,
                     double confidence = 0.95);

}  // namespace cesm::core
