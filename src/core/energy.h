#pragma once
// Global energy budget checks — the paper's §6 future work: "we plan to
// extend our verification metrics to evaluate the impact of compression on
// global energy budget calculations".
//
// Climate analysts monitor the area-weighted global means of the top-of-
// model radiative fluxes; the planetary imbalance FSNT - FLNT is a key
// closure diagnostic and is O(1 W/m2) — small differences matter. A
// compression method is "budget-safe" when applying it to the flux
// variables changes the imbalance by far less than the ensemble's own
// spread in that quantity.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "climate/ensemble.h"
#include "compress/codec.h"

namespace cesm::core {

/// Area-weighted global mean of a field over valid (non-fill) points.
double global_mean_weighted(const climate::Field& field, const climate::Grid& grid);

struct EnergyBudget {
  double fsnt = 0.0;       ///< net solar flux at top of model, W/m2
  double flnt = 0.0;       ///< net longwave flux at top of model, W/m2
  [[nodiscard]] double imbalance() const { return fsnt - flnt; }
};

/// Compute the budget of one member from the generator.
EnergyBudget energy_budget(const climate::EnsembleGenerator& ens, std::uint32_t member);

struct BudgetDriftResult {
  EnergyBudget original;
  EnergyBudget reconstructed;
  double imbalance_drift = 0.0;   ///< |delta imbalance| due to compression
  double ensemble_spread = 0.0;   ///< spread of imbalance across members
  bool pass = false;              ///< drift <= tolerance * spread
};

/// Evaluate compression-induced drift of the global energy budget:
/// compress FSNT and FLNT of `member` with `codec`, recompute the
/// imbalance, and compare the drift against the ensemble's own spread of
/// imbalances (estimated from `spread_members` members).
BudgetDriftResult energy_budget_drift(const climate::EnsembleGenerator& ens,
                                      const comp::Codec& codec, std::uint32_t member,
                                      std::size_t spread_members = 8,
                                      double tolerance = 0.1);

}  // namespace cesm::core
