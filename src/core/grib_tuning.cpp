#include "core/grib_tuning.h"

#include <algorithm>

#include "compress/grib2/grib2.h"
#include "core/suite.h"
#include "util/error.h"
#include "util/scheduler.h"
#include "util/trace.h"

namespace cesm::core {

GribTuning rmsz_guided_decimal_scale(const EnsembleStats& stats,
                                     std::optional<float> fill,
                                     std::span<const std::size_t> test_members,
                                     const PvtThresholds& thresholds,
                                     int significant_digits,
                                     int max_extra_digits,
                                     std::size_t chunk_elems,
                                     comp::PlanStore* plans) {
  CESM_REQUIRE(!test_members.empty());
  trace::Span span("grib.tune");
  PvtVerifier verifier(stats, thresholds);
  verifier.set_plan_store(plans);

  // Magnitude-based starting point from the probe member's range.
  const climate::Field& probe = stats.member(test_members.front());
  const std::vector<std::uint8_t> mask = probe.valid_mask();
  const stats::Summary summary = stats::summarize(std::span<const float>(probe.data), mask);
  const int d0 = comp::choose_decimal_scale(summary.min, summary.max, significant_digits);

  GribTuning tuning;
  tuning.decimal_scale = d0;
  for (int extra = 0; extra <= max_extra_digits; ++extra) {
    const int d = std::min(30, d0 + extra);
    const comp::CodecPtr codec_ptr =
        with_chunking(std::make_shared<comp::Grib2Codec>(d, fill), chunk_elems);
    const comp::Codec& codec = *codec_ptr;
    ++tuning.attempts;
    trace::counter_add("grib.tune_attempts", 1);
    bool all_pass = true;
    if (Scheduler::global().thread_count() <= 1) {
      // Serial: keep the early break — a failed member skips the rest.
      for (std::size_t m : test_members) {
        const MemberEvaluation eval = verifier.evaluate_member(codec, m);
        if (!(eval.rho_pass && eval.rmsz_pass && eval.enmax_pass)) {
          all_pass = false;
          break;
        }
      }
    } else {
      // Parallel: evaluate every member (each is an independent
      // compress + score) and AND the flags. The early break only skips
      // work, never changes the verdict, so both paths agree exactly.
      std::vector<std::uint8_t> pass(test_members.size(), 0);
      parallel_for(0, test_members.size(), [&](std::size_t i) {
        const MemberEvaluation eval =
            verifier.evaluate_member(codec, test_members[i]);
        pass[i] = (eval.rho_pass && eval.rmsz_pass && eval.enmax_pass) ? 1 : 0;
      });
      all_pass = std::all_of(pass.begin(), pass.end(),
                             [](std::uint8_t p) { return p != 0; });
    }
    if (all_pass) {
      tuning.decimal_scale = d;
      tuning.passed = true;
      return tuning;
    }
    if (d == 30) break;
  }
  // No D passed: keep the finest attempted (the paper likewise reports
  // GRIB2 failures on large-range variables despite tuning).
  tuning.decimal_scale = std::min(30, d0 + max_extra_digits);
  tuning.passed = false;
  return tuning;
}

}  // namespace cesm::core
