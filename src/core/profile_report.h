#pragma once
// Rendering of the cesm::trace span tree as a human-readable text tree
// and as machine-readable JSON (the --profile=out.json payload every
// bench can emit; schema documented in docs/methodology.md under
// "Profiling & tracing").

#include <map>
#include <string>

#include "util/trace.h"

namespace cesm::core {

/// JSON document for an explicit tree/aggregate/counter snapshot.
/// Schema (stable, versioned by the "schema" field):
///   {
///     "schema": "cesmcomp-profile-1",
///     "spans":      { "label", "count", "total_s", "mean_s", "max_s",
///                     "children": [ ...same shape... ] },
///     "aggregates": [ { "label", "count", "total_s", "mean_s", "max_s" } ],
///     "counters":   { "<name>": <integer>, ... }
///   }
std::string profile_json(const trace::ReportNode& tree,
                         const std::map<std::string, trace::SpanStats>& aggregates,
                         const std::map<std::string, std::uint64_t>& counters);

/// JSON for the current process-wide trace contents.
std::string profile_json();

/// Indented span tree plus counters, for stderr consumption.
std::string profile_text(const trace::ReportNode& tree,
                         const std::map<std::string, std::uint64_t>& counters);
std::string profile_text();

/// Collect the current trace contents and write profile_json() to
/// `path`. Throws IoError when the file cannot be written.
void write_profile_json(const std::string& path);

}  // namespace cesm::core
