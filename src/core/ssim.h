#pragma once
// Structural similarity (SSIM) index — the paper's §6 future work:
// "because climate scientists visualize subsets of their simulation data
// ... we intend to utilize the structural similarity (SSIM) index [19],
// a recent and meaningful metric of image quality".
//
// Implements Wang et al. (2004) mean SSIM over sliding windows of a
// 2-D lat-lon slice, with the dynamic range L taken from the original
// field (climate data is not 8-bit imagery). 3-D fields are scored per
// level and averaged.

#include <cstddef>
#include <span>

#include "climate/field.h"

namespace cesm::core {

struct SsimOptions {
  std::size_t window = 8;    ///< square window side (samples)
  double k1 = 0.01;          ///< Wang et al. stabilization constants
  double k2 = 0.03;
};

/// Mean SSIM between two equally-shaped 2-D images (rows x cols),
/// computed over all `window`-sized tiles (partial edge tiles included).
/// Returns 1.0 for identical inputs; values below ~0.99 are visually
/// noticeable for smooth geophysical fields.
double ssim_2d(std::span<const float> original, std::span<const float> reconstructed,
               std::size_t rows, std::size_t cols, const SsimOptions& options = {});

/// Mean SSIM for a climate Field: a 2-D field is one image of
/// nlat x nlon; a 3-D field is scored per level and averaged. `nlat` and
/// `nlon` give the horizontal unflattening of the column dimension.
double ssim_field(const climate::Field& original, std::span<const float> reconstructed,
                  std::size_t nlat, std::size_t nlon, const SsimOptions& options = {});

}  // namespace cesm::core
