#pragma once
// Whole-catalog verification driver.
//
// Runs the full §4 methodology for every variable in the ensemble against
// the paper's nine lossy variants, producing the raw material of Tables
// 3, 4, 6 and Figures 1–4 in a single sweep:
//   * per variable: characterization, RMSZ-guided GRIB2 decimal scale,
//     nine VariableVerdicts (tests 1–4 each), and the lossless baselines;
//   * aggregation helpers: per-method pass counts (Table 6) and the
//     per-variant error distributions (Figure 1).

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "climate/ensemble.h"
#include "compress/variants.h"
#include "core/grib_tuning.h"
#include "core/metrics.h"
#include "core/pvt.h"

namespace cesm::core {

struct SuiteConfig {
  std::size_t test_member_count = 3;     ///< paper: "generally three is sufficient"
  std::uint64_t member_seed = 0x73575eedull;
  bool run_bias = true;                  ///< bias test compresses all members
  PvtThresholds thresholds;
  int grib_significant_digits = 4;
  /// How far past the magnitude heuristic the RMSZ-guided D search may
  /// go. A small budget mirrors the paper: even with RMSZ-guided tuning,
  /// GRIB2 cannot satisfy the tests on large-range variables (§5.3).
  int grib_max_extra_digits = 2;

  /// Nonzero: wrap every codec the suite measures (variants, GRIB2 tuning
  /// attempts, lossless baselines, fallback stand-ins) in a ChunkedCodec
  /// with this target chunk size — the chunk partition the out-of-core
  /// leg streams through, so an in-core run with the same value produces
  /// bit-identical verdicts and CRs to run_variable_streaming (core/ooc.h).
  /// 0 (the default) keeps the unwrapped codecs and existing results.
  /// Must be >= 1024 when set (ChunkedCodec's floor).
  std::size_t chunk_elems = 0;

  // --- variant-sweep engine (docs/codecs.md) ---
  /// Concurrent variant tasks per variable: 1 (the default) runs the
  /// sweep serially in catalog order — today's schedule, one verifier
  /// arena warmed across the sweep; 0 spawns one task per variant; N
  /// splits the sweep into about N tasks. Results land in fixed
  /// catalog-order slots, so the suite CSV is byte-identical at every
  /// setting and worker count.
  std::size_t variant_jobs = 1;
  /// Byte cap for the per-variable shared encode-prep plan cache
  /// (compress/prep.h): the variant-invariant stage of each codec family
  /// (fpzip ordered map, ISABELA sort + spline fit, GRIB2 bitmap/scan +
  /// wavelet lift) is computed once per member and reused across the
  /// family's variants, the GRIB2 tuning ladder, and the lossless
  /// baselines. Plans never change the emitted streams (bit-identity
  /// contract). 0 disables plan sharing entirely.
  std::size_t plan_cache_bytes = 128ull << 20;

  // --- robustness policy (exercised by cesm::fail injection) ---
  /// When a lossy variant's verify throws, record a codec-error verdict
  /// and re-verify with the family's lossless stand-in (fpzip -> fpzip-32,
  /// everything else -> NetCDF-4), mirroring the §5 hybrid fallback.
  bool lossless_fallback = true;
  /// Re-run a variable this many times after a whole-variable failure
  /// before giving up on it (one-shot faults clear on retry).
  std::size_t variable_retry_limit = 1;
  /// A variable that still fails after retries is marked
  /// processing_failed instead of aborting the whole suite.
  bool continue_on_variable_error = true;
};

/// Everything measured for one variable.
struct VariableResult {
  std::string variable;
  bool is_3d = false;
  std::optional<float> fill;
  Characterization character;
  int grib_decimal_scale = 0;
  bool grib_tuning_passed = false;
  std::vector<VariableVerdict> verdicts;  ///< one per variant, paper order
  double netcdf4_cr = 1.0;                ///< lossless deflate CR (probe member)
  double fpzip32_cr = 1.0;                ///< fpzip lossless CR (probe member)
  std::vector<std::size_t> test_members;
  /// The variable could not be processed at all (even after retries);
  /// `verdicts` is empty and downstream aggregation skips it.
  bool processing_failed = false;
  std::string error_message;
};

/// Table 6 row.
struct MethodTally {
  std::string codec;
  std::size_t rho = 0;
  std::size_t rmsz = 0;
  std::size_t enmax = 0;
  std::size_t bias = 0;
  std::size_t all = 0;
};

struct SuiteResults {
  std::vector<std::string> variant_names;
  std::vector<VariableResult> variables;

  /// Per-method pass counts over all variables (Table 6). Variables with
  /// processing_failed set are excluded.
  [[nodiscard]] std::vector<MethodTally> tally() const;

  /// Variables whose processing failed outright (see VariableResult).
  [[nodiscard]] std::size_t failed_variable_count() const;

  /// Index of a variant by its table name; throws if absent. O(1) via the
  /// lookup table derive_variant_names builds; falls back to a scan of
  /// variant_names for hand-assembled results that never went through it.
  [[nodiscard]] std::size_t variant_index(const std::string& name) const;

  [[nodiscard]] const VariableResult& variable(const std::string& name) const;

  /// name -> position in variant_names, rebuilt by derive_variant_names.
  std::unordered_map<std::string, std::size_t> variant_lookup;
};

/// The variable set a suite run covers: the whole catalog when
/// `variables` is empty, otherwise the named specs in the given order
/// (throws on an unknown name). Shared by run_suite and
/// run_suite_streaming so both legs agree on ordering — the property the
/// byte-identical CSV claims rest on.
std::vector<const climate::VariableSpec*> resolve_suite_specs(
    const climate::EnsembleGenerator& ensemble,
    const std::vector<std::string>& variables);

/// Run the suite over `variables` (whole catalog when empty). Work is
/// parallelized across variables. This is the expensive entry point: the
/// bias test alone compresses members x variants streams per variable.
SuiteResults run_suite(const climate::EnsembleGenerator& ensemble,
                       const SuiteConfig& config = {},
                       std::vector<std::string> variables = {});

/// Single-variable version (used by the spotlight benches and tests).
/// `pool`, when non-null, supplies the variant catalog from a shared
/// cache (run_suite passes one so the eight tuning-independent codecs are
/// constructed once per suite run instead of once per variable).
VariableResult run_variable(const climate::EnsembleGenerator& ensemble,
                            const climate::VariableSpec& spec,
                            const SuiteConfig& config = {},
                            const comp::VariantPool* pool = nullptr);

/// Scheduler grain for sweeping `n` variants under
/// SuiteConfig::variant_jobs: 1 -> n (one serial task, catalog order),
/// 0 -> 1 (one task per variant), N -> about N contiguous tasks. Shared by
/// the in-core and streaming sweeps.
[[nodiscard]] inline std::size_t variant_grain(std::size_t variant_jobs,
                                               std::size_t n) {
  if (n == 0) return 1;
  if (variant_jobs <= 1) return variant_jobs == 0 ? 1 : n;
  return (n + variant_jobs - 1) / variant_jobs;
}

/// Wrap `codec` in a ChunkedCodec with the suite's chunk partition;
/// passthrough when chunk_elems == 0. The single construction point both
/// verification legs share.
comp::CodecPtr with_chunking(comp::CodecPtr codec, std::size_t chunk_elems);

/// The §5 hybrid stand-in for a lossy variant that failed outright: the
/// fpzip family degrades to its own lossless mode (fpzip-32); every other
/// family has no lossless mode and is stored as NetCDF-4 instead.
/// Exposed so the streaming leg records the same fallback codec names.
comp::CodecPtr lossless_stand_in(const std::string& failed_codec,
                                 std::optional<float> fill,
                                 std::size_t chunk_elems = 0);

/// Derive results.variant_names from the verdicts actually recorded (and
/// check every processed variable agrees on them) — shared by run_suite
/// and run_suite_streaming so tally() pairs names with verdicts the same
/// way on both legs.
void derive_variant_names(SuiteResults& results);

}  // namespace cesm::core
