#include "core/export.h"

#include <fstream>
#include <sstream>

#include "util/error.h"

namespace cesm::core {

namespace {

void append_metrics(std::ostringstream& out, const VariableVerdict& verdict) {
  // Average the member evaluations (the suite tests several members). A
  // codec-error verdict whose fallback also failed has no evaluations at
  // all; emit zeros rather than 0/0 NaNs.
  double cr = verdict.mean_cr, pearson = 0.0, nrmse = 0.0, enmax = 0.0, rmsz_diff = 0.0;
  const auto n = static_cast<double>(verdict.members.size());
  if (verdict.members.empty()) {
    out << cr << ",0,0,0,0";
    return;
  }
  for (const MemberEvaluation& e : verdict.members) {
    pearson += e.metrics.pearson;
    nrmse += e.metrics.nrmse;
    enmax += e.metrics.e_nmax;
    rmsz_diff += e.rmsz_diff;
  }
  out << cr << ',' << pearson / n << ',' << nrmse / n << ',' << enmax / n << ','
      << rmsz_diff / n;
}

}  // namespace

std::string suite_results_csv(const SuiteResults& results) {
  std::ostringstream out;
  out << "variable,is_3d,variant,cr,pearson,nrmse,e_nmax,rmsz_diff,"
         "rho_pass,rmsz_pass,enmax_pass,bias_pass,all_pass,"
         "bias_slope,bias_intercept,bias_slope_distance,grib_decimal_scale,"
         "codec_error,fallback_codec\n";
  out.precision(10);
  for (const VariableResult& var : results.variables) {
    // A variable whose processing failed outright recorded no verdicts;
    // its verdict rows cannot be synthesized, so it is absent from the
    // table (failed_variable_count() says how many are missing).
    if (var.processing_failed) continue;
    for (std::size_t vi = 0; vi < results.variant_names.size(); ++vi) {
      const VariableVerdict& verdict = var.verdicts[vi];
      out << var.variable << ',' << (var.is_3d ? 1 : 0) << ','
          << results.variant_names[vi] << ',';
      append_metrics(out, verdict);
      out << ',' << verdict.rho_pass << ',' << verdict.rmsz_pass << ','
          << verdict.enmax_pass << ',' << verdict.bias_pass << ','
          << verdict.all_pass() << ',' << verdict.bias.fit.slope << ','
          << verdict.bias.fit.intercept << ',' << verdict.bias.slope_distance << ','
          << var.grib_decimal_scale << ',' << verdict.codec_error << ','
          << verdict.fallback_codec << '\n';
    }
  }
  return out.str();
}

std::string hybrid_selections_csv(std::span<const HybridSummary> hybrids) {
  std::ostringstream out;
  out << "family,variable,variant,cr,pearson,nrmse,e_nmax,lossless_fallback\n";
  out.precision(10);
  for (const HybridSummary& h : hybrids) {
    for (const HybridSelection& sel : h.selections) {
      out << h.family << ',' << sel.variable << ',' << sel.variant << ',' << sel.cr << ','
          << sel.pearson << ',' << sel.nrmse << ',' << sel.enmax << ','
          << (sel.lossless_fallback ? 1 : 0) << '\n';
    }
  }
  return out.str();
}

void write_text_file(const std::string& path, const std::string& contents) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw IoError("cannot open for writing: " + path);
  f << contents;
  if (!f) throw IoError("write failed: " + path);
}

}  // namespace cesm::core
