#include "core/export.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace cesm::core {

namespace {

void append_metrics(std::ostringstream& out, const VariableVerdict& verdict) {
  // Average the member evaluations (the suite tests several members). A
  // codec-error verdict whose fallback also failed has no evaluations at
  // all; emit zeros rather than 0/0 NaNs.
  double cr = verdict.mean_cr, pearson = 0.0, nrmse = 0.0, enmax = 0.0, rmsz_diff = 0.0;
  const auto n = static_cast<double>(verdict.members.size());
  if (verdict.members.empty()) {
    out << cr << ",0,0,0,0";
    return;
  }
  for (const MemberEvaluation& e : verdict.members) {
    pearson += e.metrics.pearson;
    nrmse += e.metrics.nrmse;
    enmax += e.metrics.e_nmax;
    rmsz_diff += e.rmsz_diff;
  }
  out << cr << ',' << pearson / n << ',' << nrmse / n << ',' << enmax / n << ','
      << rmsz_diff / n;
}

}  // namespace

std::string csv_field(const std::string& value) {
  // RFC 4180: a field containing the separator, a quote, or a line break
  // must be quoted, with embedded quotes doubled. Everything else passes
  // through verbatim, so numeric columns and plain names are unchanged.
  // This matters for error_message: codec exceptions routinely contain
  // commas ("format error: expected 4, got 2"), and a failpoint-armed run
  // used to shear such a row into extra columns.
  if (value.find_first_of(",\"\r\n") == std::string::npos) return value;
  std::string quoted;
  quoted.reserve(value.size() + 2);
  quoted.push_back('"');
  for (const char c : value) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

std::string suite_results_csv(const SuiteResults& results) {
  std::ostringstream out;
  out << "variable,is_3d,variant,cr,pearson,nrmse,e_nmax,rmsz_diff,"
         "rho_pass,rmsz_pass,enmax_pass,bias_pass,all_pass,"
         "bias_slope,bias_intercept,bias_slope_distance,grib_decimal_scale,"
         "codec_error,fallback_codec,error_message\n";
  out.precision(10);
  for (const VariableResult& var : results.variables) {
    // A variable whose processing failed outright recorded no verdicts;
    // its verdict rows cannot be synthesized, so it is absent from the
    // table (failed_variable_count() says how many are missing).
    if (var.processing_failed) continue;
    for (std::size_t vi = 0; vi < results.variant_names.size(); ++vi) {
      const VariableVerdict& verdict = var.verdicts[vi];
      out << csv_field(var.variable) << ',' << (var.is_3d ? 1 : 0) << ','
          << csv_field(results.variant_names[vi]) << ',';
      append_metrics(out, verdict);
      out << ',' << verdict.rho_pass << ',' << verdict.rmsz_pass << ','
          << verdict.enmax_pass << ',' << verdict.bias_pass << ','
          << verdict.all_pass() << ',' << verdict.bias.fit.slope << ','
          << verdict.bias.fit.intercept << ',' << verdict.bias.slope_distance << ','
          << var.grib_decimal_scale << ',' << verdict.codec_error << ','
          << csv_field(verdict.fallback_codec) << ','
          << csv_field(verdict.error_message) << '\n';
    }
  }
  return out.str();
}

std::string hybrid_selections_csv(std::span<const HybridSummary> hybrids) {
  std::ostringstream out;
  out << "family,variable,variant,cr,pearson,nrmse,e_nmax,lossless_fallback\n";
  out.precision(10);
  for (const HybridSummary& h : hybrids) {
    for (const HybridSelection& sel : h.selections) {
      out << csv_field(h.family) << ',' << csv_field(sel.variable) << ','
          << csv_field(sel.variant) << ',' << sel.cr << ',' << sel.pearson << ','
          << sel.nrmse << ',' << sel.enmax << ',' << (sel.lossless_fallback ? 1 : 0)
          << '\n';
    }
  }
  return out.str();
}

void write_text_file(const std::string& path, const std::string& contents) {
  // Temp + rename (the DiskCache discipline): a crash, ENOSPC, or a
  // drained Ctrl-C between open and close can no longer leave a
  // half-written file under the final name.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    if (!f) throw IoError("cannot open for writing: " + tmp);
    f << contents;
    f.flush();
    if (!f) {
      f.close();
      std::remove(tmp.c_str());
      throw IoError("write failed: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw IoError("rename failed: " + path + ": " + ec.message());
  }
}

}  // namespace cesm::core
