#include "core/ooc.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <random>
#include <thread>
#include <utility>

#include "compress/chunked.h"
#include "compress/deflate/deflate.h"
#include "compress/fpz/fpz.h"
#include "compress/grib2/grib2.h"
#include "compress/variants.h"
#include "core/bias.h"
#include "core/ensemble_cache.h"
#include "stats/correlation.h"
#include "util/cache.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/scheduler.h"
#include "util/trace.h"

namespace cesm::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::size_t max_chunk_elems(std::span<const std::size_t> offsets) {
  std::size_t worst = 0;
  for (std::size_t c = 0; c + 1 < offsets.size(); ++c) {
    worst = std::max(worst, offsets[c + 1] - offsets[c]);
  }
  return worst;
}

/// Concurrent buffer "lanes": tasks of a parallel loop execute on the
/// worker threads plus the caller (parallel_for helps). Budget allowances
/// for per-task buffers are charged for this many simultaneous tasks.
std::size_t buffer_lanes() { return Scheduler::global().thread_count() + 1; }

/// One prefetched chunk read running on the scheduler.
struct ReadTask final : Task {
  const ncio::ChunkStoreReader* store = nullptr;
  std::uint32_t member = 0;
  std::size_t chunk = 0;
  std::span<float> out;

  static void run(Task* task) {
    auto* self = static_cast<ReadTask*>(task);
    self->store->read_chunk(self->member, self->chunk, self->out);
  }
};

/// Walk every chunk of one member in store order, calling
/// `process(chunk_index, data)` with the chunk resident in one of the two
/// buffers. With workers available the next chunk's read is in flight on
/// the scheduler while the current chunk is processed (double buffering);
/// single-threaded schedulers read synchronously — spawning there would
/// only add a steal point where a helping wait() could stack a sibling
/// member task's buffers onto this thread.
template <typename Process>
void walk_member_chunks(const ncio::ChunkStoreReader& store, std::uint32_t member,
                        std::span<float> buf0, std::span<float> buf1,
                        Process&& process) {
  const std::size_t chunks = store.chunk_count();
  if (chunks == 0) return;
  const bool overlap = Scheduler::global().thread_count() > 1;
  std::span<float> bufs[2] = {buf0, buf1};

  ReadTask read;
  read.invoke = &ReadTask::run;
  read.store = &store;
  read.member = member;
  TaskGroup group;

  store.read_chunk(member, 0, bufs[0].first(store.chunk_elems(0)));
  for (std::size_t c = 0; c < chunks; ++c) {
    const bool pending = overlap && c + 1 < chunks;
    if (pending) {
      read.chunk = c + 1;
      read.out = bufs[(c + 1) % 2].first(store.chunk_elems(c + 1));
      group.spawn(read);
    }
    try {
      process(c, std::span<const float>(bufs[c % 2].first(store.chunk_elems(c))));
    } catch (...) {
      if (pending) {
        // The read task aliases this frame's buffers: it must finish
        // before unwinding. The processing error wins over a read error.
        try {
          group.wait();
        } catch (...) {
        }
      }
      throw;
    }
    if (pending) {
      group.wait();
    } else if (c + 1 < chunks) {
      store.read_chunk(member, c + 1, bufs[(c + 1) % 2].first(store.chunk_elems(c + 1)));
    }
  }
}

}  // namespace

StreamingStats::StreamingStats(const ncio::ChunkStoreReader& store,
                               util::MemoryBudget& budget) {
  trace::Span span("ooc.stats");
  member_count_ = store.member_count();
  CESM_REQUIRE(member_count_ >= 3);
  n_ = store.total_elems();
  const std::vector<std::size_t>& offsets = store.chunk_offsets();
  const std::size_t chunks = store.chunk_count();
  const std::size_t max_chunk = max_chunk_elems(offsets);
  const bool has_fill = store.fill().has_value();
  constexpr float kInf = std::numeric_limits<float>::infinity();

  // Resident per-point arrays: sum + sum_sq (2 x 8) + the four extreme
  // planes (4 x 4) + the two arg planes (2 x 4) = 40 bytes per point,
  // plus the mask byte while it exists.
  budget.charge("ooc.point_stats",
                static_cast<std::uint64_t>(n_) * (40 + (has_fill ? 1 : 0)));
  sum_.assign(n_, 0.0);
  sum_sq_.assign(n_, 0.0);
  max1_.assign(n_, -kInf);
  max2_.assign(n_, -kInf);
  min1_.assign(n_, kInf);
  min2_.assign(n_, kInf);
  argmax_.assign(n_, 0);
  argmin_.assign(n_, 0);
  if (has_fill) mask_.assign(n_, 1);

  // Pass 1 — parallel over chunks: each task owns one chunk buffer and a
  // disjoint point slice, and walks the members in order within it (the
  // member-major-per-point order EnsembleStats::build uses, so the float
  // adds and the argmax tie-breaks are bit-identical). Member 0 derives
  // the validity mask slice; later members must agree on it, exactly as
  // EnsembleStats requires of resident fields.
  const std::uint64_t pass1_bytes =
      static_cast<std::uint64_t>(buffer_lanes()) * max_chunk * sizeof(float);
  budget.charge("ooc.pass1_buffers", pass1_bytes);
  const float fill = store.fill().value_or(0.0f);
  parallel_for(0, chunks, [&](std::size_t c) {
    const std::size_t lo = offsets[c];
    const std::size_t len = store.chunk_elems(c);
    std::vector<float> buf(len);
    const std::span<std::uint8_t> mask_slice =
        has_fill ? std::span<std::uint8_t>(mask_).subspan(lo, len)
                 : std::span<std::uint8_t>{};
    for (std::size_t m = 0; m < member_count_; ++m) {
      store.read_chunk(static_cast<std::uint32_t>(m), c, buf);
      if (has_fill) {
        if (m == 0) {
          for (std::size_t i = 0; i < len; ++i) {
            mask_slice[i] = buf[i] == fill ? std::uint8_t{0} : std::uint8_t{1};
          }
        } else {
          for (std::size_t i = 0; i < len; ++i) {
            // Every member must share one fill pattern or sum_/sum_sq_
            // would silently absorb fill values (same contract as
            // EnsembleStats' effective_mask check).
            CESM_REQUIRE((buf[i] == fill) == (mask_slice[i] == 0));
          }
        }
      }
      stats::kernels::accumulate_sum_sq(buf, mask_slice,
                                        std::span<double>(sum_).subspan(lo, len),
                                        std::span<double>(sum_sq_).subspan(lo, len));
      stats::kernels::update_extremes(
          buf, mask_slice, static_cast<std::uint32_t>(m),
          std::span<float>(max1_).subspan(lo, len),
          std::span<float>(max2_).subspan(lo, len),
          std::span<std::uint32_t>(argmax_).subspan(lo, len),
          std::span<float>(min1_).subspan(lo, len),
          std::span<float>(min2_).subspan(lo, len),
          std::span<std::uint32_t>(argmin_).subspan(lo, len));
    }
  });
  budget.release(pass1_bytes);

  // Normalize: a fill pattern that never fires is the same as no fill at
  // all (EnsembleStats' effective_mask), so downstream kernels take the
  // dense path and verdicts match fill-free variables bit for bit.
  if (has_fill) {
    valid_points_ = stats::kernels::count_valid(mask_, n_);
    if (valid_points_ == n_) {
      mask_.clear();
      mask_.shrink_to_fit();
      budget.release(n_);
    }
  } else {
    valid_points_ = n_;
  }
  CESM_REQUIRE(valid_points_ > 0);

  // Pass 2 — parallel over members: each member streams its chunks once
  // more through the block-realigning moment/z-score streams (bit-equal
  // to the one-shot kernels on the whole array) and folds its
  // leave-one-out max distance. Reads are double-buffered per member.
  member_summary_.resize(member_count_);
  ranges_.resize(member_count_);
  global_means_.resize(member_count_);
  rmsz_dist_.resize(member_count_);
  enmax_dist_.resize(member_count_);
  budget.charge("ooc.member_stats",
                static_cast<std::uint64_t>(member_count_) *
                    (sizeof(stats::Summary) + 4 * sizeof(double)));
  const std::uint64_t pass2_bytes =
      static_cast<std::uint64_t>(buffer_lanes()) * 2 * max_chunk * sizeof(float);
  budget.charge("ooc.pass2_buffers", pass2_bytes);
  const bool masked = !mask_.empty();
  const std::span<const std::uint8_t> mask(mask_);
  parallel_for(0, member_count_, [&](std::size_t m) {
    std::vector<float> b0(max_chunk);
    std::vector<float> b1(max_chunk);
    stats::kernels::MomentStream mom(masked);
    stats::kernels::ZScoreStream zs(static_cast<double>(member_count_),
                                    kDegenerateSpreadRelTol, masked);
    double worst = 0.0;
    walk_member_chunks(
        store, static_cast<std::uint32_t>(m), b0, b1,
        [&](std::size_t c, std::span<const float> x) {
          const std::size_t lo = offsets[c];
          const std::size_t len = x.size();
          const std::span<const std::uint8_t> mask_slice =
              masked ? mask.subspan(lo, len) : mask;
          mom.feed(x, mask_slice);
          zs.feed(x, x, std::span<const double>(sum_).subspan(lo, len),
                  std::span<const double>(sum_sq_).subspan(lo, len), mask_slice);
          // E_nmax fold (eq. 10): pointwise leave-one-out distance, max
          // over valid points — order-invariant, so the chunk partition
          // cannot change it.
          for (std::size_t i = 0; i < len; ++i) {
            if (masked && mask_[lo + i] == 0) continue;
            const float hi_v = (argmax_[lo + i] == m) ? max2_[lo + i] : max1_[lo + i];
            const float lo_v = (argmin_[lo + i] == m) ? min2_[lo + i] : min1_[lo + i];
            const double d =
                std::max(static_cast<double>(hi_v) - static_cast<double>(x[i]),
                         static_cast<double>(x[i]) - static_cast<double>(lo_v));
            worst = std::max(worst, d);
          }
        });
    const stats::kernels::MomentAccum a = mom.finish();
    member_summary_[m] = stats::summary_from(a);
    ranges_[m] = a.max - a.min;
    global_means_[m] = a.mean;
    rmsz_dist_[m] = rmsz_from_accum(zs.finish());
    enmax_dist_[m] = ranges_[m] > 0.0 ? worst / ranges_[m] : worst;
  });
  budget.release(pass2_bytes);

  const auto [lo_it, hi_it] = std::minmax_element(rmsz_dist_.begin(), rmsz_dist_.end());
  rmsz_min_ = *lo_it;
  rmsz_max_ = *hi_it;
}

double StreamingStats::enmax_range() const {
  const auto [lo, hi] = std::minmax_element(enmax_dist_.begin(), enmax_dist_.end());
  return *hi - *lo;
}

namespace {

/// The chunk partition of one variable's spill: the ChunkedCodec partition
/// every downstream phase (stats, round-trips, packed_stream_bytes) reuses.
struct SpillLayout {
  comp::Shape shape;
  std::vector<std::size_t> offsets;
  std::size_t max_chunk = 0;
};

SpillLayout spill_layout(const climate::EnsembleGenerator& ensemble,
                         const climate::VariableSpec& spec, std::size_t chunk_elems) {
  SpillLayout layout;
  const std::size_t ncol = ensemble.grid().columns();
  const std::size_t nlev = spec.is_3d ? ensemble.grid().levels() : 1;
  layout.shape = spec.is_3d ? comp::Shape::d2(nlev, ncol) : comp::Shape::d1(ncol);
  layout.offsets =
      comp::ChunkedCodec(std::make_shared<comp::DeflateCodec>(), chunk_elems)
          .chunk_offsets(layout.shape);
  layout.max_chunk = max_chunk_elems(layout.offsets);
  return layout;
}

}  // namespace

void stage_variable_at(const climate::EnsembleGenerator& ensemble,
                       const climate::VariableSpec& spec, const std::string& path,
                       std::size_t chunk_elems, util::MemoryBudget& budget) {
  trace::Span span("ooc.stage");
  const SpillLayout layout = spill_layout(ensemble, spec, chunk_elems);
  const std::vector<std::size_t>& offsets = layout.offsets;
  const std::optional<float> fill =
      spec.has_fill ? std::optional<float>(climate::kFillValue) : std::nullopt;
  const std::size_t members = ensemble.members();

  ncio::ChunkStoreWriter writer(path, spec.name, layout.shape, fill,
                                static_cast<std::uint32_t>(members), offsets);

  const std::uint64_t stage_bytes =
      static_cast<std::uint64_t>(buffer_lanes()) * layout.max_chunk * sizeof(float);
  budget.charge("ooc.stage_buffers", stage_bytes);
  {
    // The synthesis span is the reuse acceptance signal: a warm run that
    // reuses every spill emits zero "ensemble.synthesize" spans.
    trace::Span synth("ensemble.synthesize");
    // Warm the memoized synthesizer before fanning out (same trick as
    // ensemble_fields): the first access builds the spatial basis.
    (void)ensemble.field_elems(spec);
    parallel_for(0, members, [&](std::size_t m) {
      std::vector<float> buf(layout.max_chunk);
      for (std::size_t c = 0; c + 1 < offsets.size(); ++c) {
        const std::size_t len = offsets[c + 1] - offsets[c];
        const std::span<float> out(buf.data(), len);
        ensemble.field_range(spec, static_cast<std::uint32_t>(m), offsets[c],
                             offsets[c + 1], out);
        writer.write_chunk(static_cast<std::uint32_t>(m), c, out);
      }
    });
  }
  writer.finish();
  budget.release(stage_bytes);
  trace::counter_add("ooc.variables_staged", 1);
}

std::string stage_variable(const climate::EnsembleGenerator& ensemble,
                           const climate::VariableSpec& spec, const std::string& dir,
                           std::size_t chunk_elems, util::MemoryBudget& budget) {
  const std::string path =
      (std::filesystem::path(dir) / (spec.name + ".cnk1")).string();
  stage_variable_at(ensemble, spec, path, chunk_elems, budget);
  return path;
}

std::uint64_t spill_key(const climate::EnsembleSpec& spec,
                        const climate::VariableSpec& var, std::size_t chunk_elems) {
  // Version of the *spill* keying itself; bump when the staged bytes for
  // an identical (spec, var, partition) would change.
  constexpr std::uint64_t kSpillSchemaVersion = 1;
  // CNK1 format revisions invalidate old spills through the key too, so a
  // reader never even opens a file written by an incompatible writer.
  constexpr std::uint64_t kSpillFormatVersion = 2;
  return util::KeyHasher()
      .u64(kSpillSchemaVersion)
      .u64(kSpillFormatVersion)
      .u64(EnsembleCache::key(spec, var))
      .u64(chunk_elems)
      .digest();
}

std::string spill_path(const std::string& dir, const std::string& variable,
                       std::uint64_t key) {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(key));
  return (std::filesystem::path(dir) / (variable + "-" + hex + ".cnk1")).string();
}

SpillSession::SpillSession(const std::string& base_dir, bool keep) : keep_(keep) {
  static std::atomic<std::uint64_t> seq{0};
  static const std::uint64_t salt = [] {
    std::random_device rd;
    return (std::uint64_t{rd()} << 32) ^ std::uint64_t{rd()};
  }();
  // pid + a once-per-process random salt: unique across concurrent
  // processes sharing spill_dir, and across pid reuse after a crash.
  char token[17];
  std::snprintf(token, sizeof token, "%016llx",
                static_cast<unsigned long long>(hash_combine(
                    salt, seq.fetch_add(1, std::memory_order_relaxed) + 1)));
  dir_ = (std::filesystem::path(base_dir) /
          ("cesm-spill-" + std::to_string(static_cast<long>(::getpid())) + "-" + token))
             .string();
  std::filesystem::create_directories(dir_);
}

SpillSession::~SpillSession() {
  if (!keep_) {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);  // best effort, incl. unwind paths
  }
}

namespace {

/// Everything one member round-trip needs; the streaming analogue of the
/// (PvtVerifier, codec) pair the in-core leg passes around.
struct StreamContext {
  const ncio::ChunkStoreReader& store;
  const StreamingStats& stats;
  const comp::ChunkedCodec& chunked;
  std::size_t max_chunk;
  const PvtThresholds& thresholds;
  /// Shared encode-prep plan store (prep.h); null = direct encodes. Plans
  /// are keyed per (member, chunk) so every variant of a family reuses the
  /// chunk's variant-invariant stage. Streams stay byte-identical.
  comp::PlanStore* plans = nullptr;

  /// Encode one chunk of one member through the wrapped variant's inner
  /// codec, plan-driven when a store is attached.
  [[nodiscard]] Bytes encode_chunk(const comp::Codec& inner, std::span<const float> x,
                                   const comp::Shape& cs, std::size_t member,
                                   std::size_t c) const {
    if (plans == nullptr) return inner.encode(x, cs);
    return plans->encode(inner, x, cs,
                         static_cast<std::uint64_t>(member) * store.chunk_count() + c);
  }
};

/// Tests 1–3 for one member, chunk-at-a-time: encode + decode each chunk
/// through the wrapped variant's inner codec, feed the §4.2 error streams
/// and the z-score stream, then finalize through the exact helpers the
/// in-core evaluate_member uses. The CR is sized via packed_stream_bytes,
/// which reproduces the in-core chunked container byte count exactly.
MemberEvaluation evaluate_member_streaming(const StreamContext& ctx,
                                           std::size_t member) {
  CESM_REQUIRE(member < ctx.stats.member_count());
  const comp::Shape& shape = ctx.store.shape();
  const std::vector<std::size_t>& offsets = ctx.store.chunk_offsets();
  const bool masked = !ctx.stats.mask().empty();
  const comp::Codec& inner = *ctx.chunked.inner();

  std::vector<float> b0(ctx.max_chunk);
  std::vector<float> b1(ctx.max_chunk);
  std::vector<float> recon(ctx.max_chunk);
  std::vector<std::size_t> sizes(ctx.store.chunk_count());

  stats::kernels::ErrorNormStream err(masked);
  stats::kernels::CoMomentStream co(masked);
  stats::kernels::ZScoreStream zs(static_cast<double>(ctx.stats.member_count()),
                                  kDegenerateSpreadRelTol, masked);
  walk_member_chunks(
      ctx.store, static_cast<std::uint32_t>(member), b0, b1,
      [&](std::size_t c, std::span<const float> x) {
        const comp::Shape cs = ctx.chunked.chunk_shape(shape, offsets[c], offsets[c + 1]);
        const Bytes stream = ctx.encode_chunk(inner, x, cs, member, c);
        sizes[c] = stream.size();
        const std::span<float> out(recon.data(), x.size());
        inner.decode_into(stream, out);
        const std::span<const std::uint8_t> mask_slice =
            masked ? ctx.stats.mask().subspan(offsets[c], x.size())
                   : std::span<const std::uint8_t>{};
        err.feed(x, out, mask_slice);
        co.feed(x, out, mask_slice);
        zs.feed(out, x, ctx.stats.sum().subspan(offsets[c], x.size()),
                ctx.stats.sum_sq().subspan(offsets[c], x.size()), mask_slice);
      });
  trace::counter_add("pvt.member_roundtrips", 1);

  const double cr = comp::compression_ratio(
      ctx.chunked.packed_stream_bytes(shape, sizes), ctx.store.total_elems());
  const stats::Summary& s = ctx.stats.member_summary(member);
  const double range = s.range();
  const double peak = std::max(std::fabs(s.min), std::fabs(s.max));
  const ErrorMetrics metrics = error_metrics_from(
      err.finish(), range, peak, stats::pearson_from_accum(co.finish()));
  return finish_member_evaluation(member, cr, metrics, ctx.stats.rmsz(member),
                                  rmsz_from_accum(zs.finish()), ctx.stats.rmsz_range(),
                                  ctx.stats.enmax_range(), ctx.thresholds);
}

/// The bias sweep's per-member score: the same walk minus the error
/// metrics (only the reconstructed RMSZ is needed).
double reconstructed_rmsz_streaming(const StreamContext& ctx, std::size_t member) {
  const comp::Shape& shape = ctx.store.shape();
  const std::vector<std::size_t>& offsets = ctx.store.chunk_offsets();
  const bool masked = !ctx.stats.mask().empty();
  const comp::Codec& inner = *ctx.chunked.inner();

  std::vector<float> b0(ctx.max_chunk);
  std::vector<float> b1(ctx.max_chunk);
  std::vector<float> recon(ctx.max_chunk);
  stats::kernels::ZScoreStream zs(static_cast<double>(ctx.stats.member_count()),
                                  kDegenerateSpreadRelTol, masked);
  walk_member_chunks(
      ctx.store, static_cast<std::uint32_t>(member), b0, b1,
      [&](std::size_t c, std::span<const float> x) {
        const comp::Shape cs = ctx.chunked.chunk_shape(shape, offsets[c], offsets[c + 1]);
        const Bytes stream = ctx.encode_chunk(inner, x, cs, member, c);
        const std::span<float> out(recon.data(), x.size());
        inner.decode_into(stream, out);
        const std::span<const std::uint8_t> mask_slice =
            masked ? ctx.stats.mask().subspan(offsets[c], x.size())
                   : std::span<const std::uint8_t>{};
        zs.feed(out, x, ctx.stats.sum().subspan(offsets[c], x.size()),
                ctx.stats.sum_sq().subspan(offsets[c], x.size()), mask_slice);
      });
  trace::counter_add("pvt.member_roundtrips", 1);
  return rmsz_from_accum(zs.finish());
}

/// Streaming verify(): tests 1–3 on the test members (parallel, one slot
/// each), fold, then the bias sweep over all members — seeding the test
/// members' already-computed scores exactly as the in-core sweep does.
VariableVerdict verify_streaming(const StreamContext& ctx,
                                 std::span<const std::size_t> test_members,
                                 bool run_bias, double bias_confidence) {
  CESM_REQUIRE(!test_members.empty());
  trace::Span span("ooc.verify_variant");
  VariableVerdict verdict;
  verdict.variable = ctx.store.variable();
  verdict.codec = ctx.chunked.name();

  verdict.members.resize(test_members.size());
  parallel_for(0, test_members.size(), [&](std::size_t i) {
    verdict.members[i] = evaluate_member_streaming(ctx, test_members[i]);
  });
  fold_member_flags(verdict);

  if (run_bias) {
    const std::size_t m_count = ctx.stats.member_count();
    std::vector<double> scores(m_count);
    std::vector<std::uint8_t> seeded(m_count, 0);
    std::uint64_t reused = 0;
    for (const MemberEvaluation& eval : verdict.members) {
      if (eval.member < m_count && seeded[eval.member] == 0) {
        scores[eval.member] = eval.rmsz_reconstructed;
        seeded[eval.member] = 1;
        ++reused;
      }
    }
    trace::counter_add("pvt.bias_reused", reused);
    std::vector<std::size_t> pending;
    pending.reserve(m_count);
    for (std::size_t m = 0; m < m_count; ++m) {
      if (seeded[m] == 0) pending.push_back(m);
    }
    parallel_for(0, pending.size(), [&](std::size_t i) {
      scores[pending[i]] = reconstructed_rmsz_streaming(ctx, pending[i]);
    });
    verdict.bias = bias_test(ctx.stats.rmsz_distribution(), scores, bias_confidence);
    verdict.bias_pass = verdict.bias.pass;
    verdict.bias_evaluated = true;
  } else {
    verdict.bias_pass = true;  // not evaluated: do not veto
  }
  return verdict;
}

/// Record a codec-error verdict for a streaming variant whose verify
/// threw `message`, re-scored under the same lossless stand-in as the
/// in-core leg when the fallback policy is on.
VariableVerdict codec_error_verdict_streaming(const ncio::ChunkStoreReader& store,
                                              const StreamingStats& stats,
                                              const comp::ChunkedCodec& chunked,
                                              std::size_t max_chunk,
                                              std::span<const std::size_t> test_members,
                                              const OocConfig& config,
                                              comp::PlanStore* plans,
                                              const std::string& message) {
  const SuiteConfig& suite = config.suite;
  trace::counter_add("suite.codec_errors", 1);
  VariableVerdict verdict;
  verdict.variable = store.variable();
  verdict.codec = chunked.name();
  verdict.codec_error = true;
  verdict.error_message = message;
  if (suite.lossless_fallback) {
    const comp::CodecPtr stand_in =
        lossless_stand_in(chunked.name(), store.fill(), config.chunk_elems);
    const auto* stand_in_chunked =
        dynamic_cast<const comp::ChunkedCodec*>(stand_in.get());
    CESM_REQUIRE(stand_in_chunked != nullptr);
    const StreamContext fallback_ctx{store,     stats,             *stand_in_chunked,
                                     max_chunk, suite.thresholds, plans};
    try {
      VariableVerdict lossless =
          verify_streaming(fallback_ctx, test_members, suite.run_bias,
                           suite.thresholds.bias_confidence);
      // Informational only: the variant's pass flags stay false — what
      // we are certifying is the lossy method (see suite.cpp).
      verdict.members = std::move(lossless.members);
      verdict.mean_cr = lossless.mean_cr;
      verdict.bias = lossless.bias;
      verdict.bias_evaluated = lossless.bias_evaluated;
      verdict.fallback_codec = stand_in->name();
      trace::counter_add("suite.lossless_fallbacks", 1);
    } catch (const Error&) {
      // The stand-in failed too: keep the bare codec-error verdict.
    }
  }
  return verdict;
}

/// Mirror of the in-core verify_with_fallback: a thrown cesm::Error
/// becomes a codec-error verdict (never a pass). Non-null `injected` is an
/// error raised by the caller's catalog-order failpoint pre-pass (see
/// suite.cpp): the verify is skipped and the codec-error path runs.
VariableVerdict verify_with_fallback_streaming(const ncio::ChunkStoreReader& store,
                                               const StreamingStats& stats,
                                               const comp::ChunkedCodec& chunked,
                                               std::size_t max_chunk,
                                               std::span<const std::size_t> test_members,
                                               const OocConfig& config,
                                               comp::PlanStore* plans,
                                               const std::string* injected = nullptr) {
  const SuiteConfig& suite = config.suite;
  if (injected != nullptr) {
    return codec_error_verdict_streaming(store, stats, chunked, max_chunk, test_members,
                                         config, plans, *injected);
  }
  const StreamContext ctx{store, stats, chunked, max_chunk, suite.thresholds, plans};
  try {
    return verify_streaming(ctx, test_members, suite.run_bias,
                            suite.thresholds.bias_confidence);
  } catch (const InvalidArgument&) {
    throw;  // caller bug, not a codec failure: keep the old contract
  } catch (const Error& e) {
    return codec_error_verdict_streaming(store, stats, chunked, max_chunk, test_members,
                                         config, plans, e.what());
  }
}

/// Streaming twin of rmsz_guided_decimal_scale: same d0 heuristic, same
/// ladder, same early-break semantics (serial per attempt — an attempt is
/// already parallel across its test members' chunk walks).
GribTuning tune_decimal_scale_streaming(const ncio::ChunkStoreReader& store,
                                        const StreamingStats& stats,
                                        std::size_t max_chunk,
                                        std::span<const std::size_t> test_members,
                                        const OocConfig& config,
                                        comp::PlanStore* plans) {
  CESM_REQUIRE(!test_members.empty());
  trace::Span span("grib.tune");
  const SuiteConfig& suite = config.suite;
  const stats::Summary& summary = stats.member_summary(test_members.front());
  const int d0 = comp::choose_decimal_scale(summary.min, summary.max,
                                            suite.grib_significant_digits);

  GribTuning tuning;
  tuning.decimal_scale = d0;
  for (int extra = 0; extra <= suite.grib_max_extra_digits; ++extra) {
    const int d = std::min(30, d0 + extra);
    const comp::CodecPtr codec = with_chunking(
        std::make_shared<comp::Grib2Codec>(d, store.fill()), config.chunk_elems);
    const auto* chunked = dynamic_cast<const comp::ChunkedCodec*>(codec.get());
    CESM_REQUIRE(chunked != nullptr);
    const StreamContext ctx{store, stats, *chunked, max_chunk, suite.thresholds, plans};
    ++tuning.attempts;
    trace::counter_add("grib.tune_attempts", 1);
    // Serial with early break: the break only skips work, never changes
    // the verdict, so this agrees exactly with the in-core parallel path.
    bool all_pass = true;
    for (const std::size_t m : test_members) {
      const MemberEvaluation eval = evaluate_member_streaming(ctx, m);
      if (!(eval.rho_pass && eval.rmsz_pass && eval.enmax_pass)) {
        all_pass = false;
        break;
      }
    }
    if (all_pass) {
      tuning.decimal_scale = d;
      tuning.passed = true;
      return tuning;
    }
    if (d == 30) break;
  }
  tuning.decimal_scale = std::min(30, d0 + suite.grib_max_extra_digits);
  tuning.passed = false;
  return tuning;
}

/// Deletes a reused spill file when the scope unwinds with an exception:
/// bytes that failed a run are never trusted by the next one. (POSIX
/// semantics keep the already-open reader fd valid after the unlink.)
struct ReusedSpillInvalidator {
  const std::string& path;
  bool reused;
  int base = std::uncaught_exceptions();
  ~ReusedSpillInvalidator() {
    if (reused && std::uncaught_exceptions() > base) {
      std::error_code ec;
      std::filesystem::remove(path, ec);
      trace::counter_add("ooc.spill_invalidated", 1);
    }
  }
};

/// Per-chunk working set of one member round-trip: the two walk buffers,
/// the reconstruction slab, and a transient-encode allowance of one more
/// chunk (codec streams of roughly chunk size).
std::uint64_t roundtrip_bytes_per_lane(std::size_t max_chunk) {
  return static_cast<std::uint64_t>(4) * max_chunk * sizeof(float);
}

}  // namespace

std::uint64_t ooc_working_set_bytes(const climate::EnsembleGenerator& ensemble,
                                    const climate::VariableSpec& spec,
                                    std::size_t chunk_elems) {
  const SpillLayout layout = spill_layout(ensemble, spec, chunk_elems);
  const std::uint64_t n = layout.shape.count();
  // Mirrors the charge sequence of one streaming run exactly; the peak is
  // point_stats (+ mask) + member_stats + the verify-phase lane buffers,
  // which dominates the stage (1 lane-buffer), pass-1 (1) and pass-2 (2)
  // phases.
  const std::uint64_t point_stats = n * (40 + (spec.has_fill ? 1 : 0));
  const std::uint64_t member_stats =
      static_cast<std::uint64_t>(ensemble.members()) *
      (sizeof(stats::Summary) + 4 * sizeof(double));
  const std::uint64_t lane_buffers =
      static_cast<std::uint64_t>(buffer_lanes()) *
      roundtrip_bytes_per_lane(layout.max_chunk);
  return point_stats + member_stats + lane_buffers;
}

VariableResult run_variable_streaming(const climate::EnsembleGenerator& ensemble,
                                      const climate::VariableSpec& spec,
                                      const OocConfig& config, OocPhaseStats* phases,
                                      util::MemoryBudget* shared) {
  trace::Span span("ooc.variable");
  trace::counter_add("suite.variables", 1);
  const SuiteConfig& suite = config.suite;
  if (suite.test_member_count == 0) {
    throw InvalidArgument("SuiteConfig::test_member_count must be >= 1 (variable " +
                          spec.name + ")");
  }
  CESM_FAILPOINT("suite.variable");

  // Admission: against a shared suite budget the variable acquires its
  // whole working set as one all-or-nothing reservation (parking under
  // contention, never holding a partial grant), then runs its fine-
  // grained charges against a private sub-budget capped at exactly that
  // reservation. Standalone runs keep the PR 8 fail-fast budget.
  std::optional<util::MemoryReservation> admission;
  if (shared != nullptr) {
    admission.emplace(*shared, "ooc.variable_working_set",
                      ooc_working_set_bytes(ensemble, spec, config.chunk_elems));
  }
  util::MemoryBudget budget(shared != nullptr
                                ? (shared->cap_bytes() != 0 ? admission->bytes() : 0)
                                : config.memory_budget_bytes);

  VariableResult result;
  result.variable = spec.name;
  result.is_3d = spec.is_3d;
  if (spec.has_fill) result.fill = climate::kFillValue;

  // Phase 1: synthesis -> CNK1 spill store, or content-addressed reuse of
  // a previous run's spill. A reuse candidate is only trusted after its
  // header and checksum table validate; anything less is deleted, counted
  // and restaged.
  const Clock::time_point t_stage = Clock::now();
  std::string path;
  std::optional<SpillSession> session;
  if (config.reuse_spill) {
    std::filesystem::create_directories(config.spill_dir);
    path = spill_path(config.spill_dir, spec.name,
                      spill_key(ensemble.spec(), spec, config.chunk_elems));
  } else {
    session.emplace(config.spill_dir, config.keep_spill);
    path = (std::filesystem::path(session->dir()) / (spec.name + ".cnk1")).string();
  }
  std::optional<ncio::ChunkStoreReader> store_slot;
  bool reused = false;
  if (config.reuse_spill) {
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
      try {
        store_slot.emplace(path);
        // The key should make a layout mismatch impossible; check anyway
        // so a hash collision or hand-placed file cannot poison the run.
        if (store_slot->variable() != spec.name ||
            store_slot->member_count() != ensemble.members()) {
          throw FormatError("chunkstore: spill does not match its key");
        }
        reused = true;
        trace::counter_add("ooc.spill_reused", 1);
      } catch (const Error&) {
        store_slot.reset();
        std::filesystem::remove(path, ec);
        trace::counter_add("ooc.spill_corrupt", 1);
      }
    }
  }
  if (!store_slot.has_value()) {
    stage_variable_at(ensemble, spec, path, config.chunk_elems, budget);
    store_slot.emplace(path);
  }
  const ncio::ChunkStoreReader& store = *store_slot;
  const double stage_seconds = seconds_since(t_stage);

  // From here on, a failure while running over a *reused* spill must
  // invalidate it: delete the file and count it, so the error propagates
  // to the guarded retry, which restages from fresh synthesis instead of
  // re-trusting the bytes.
  const ReusedSpillInvalidator invalidator{path, reused};

  // Phase 2: the EnsembleStats sufficient statistics in two read passes.
  const Clock::time_point t_stats = Clock::now();
  const StreamingStats stats(store, budget);
  const double stats_seconds = seconds_since(t_stats);

  // Phase 3: tuning + verdicts, chunk-at-a-time round-trips throughout.
  const Clock::time_point t_verify = Clock::now();
  const std::size_t max_chunk = max_chunk_elems(store.chunk_offsets());
  const std::uint64_t verify_bytes =
      static_cast<std::uint64_t>(buffer_lanes()) * roundtrip_bytes_per_lane(max_chunk);
  budget.charge("ooc.verify_buffers", verify_bytes);

  result.test_members =
      PvtVerifier::pick_members(suite.test_member_count, stats.member_count(),
                                hash_combine(suite.member_seed, spec.stream));
  const std::size_t probe = result.test_members.front();

  // Shared encode-prep plans for the verify phase, keyed per (member,
  // chunk). Cached plans charge the variable's own budget; one that does
  // not fit is silently not cached, so the CESM_MEM_MB cap is never at
  // risk. Declared after `budget` so its charges release first.
  comp::PlanStore plans(config.plan_cache_bytes, &budget);

  // Characterization + lossless baselines: summaries come from the pass-2
  // member moments; the CRs from chunk-at-a-time encodes sized through
  // packed_stream_bytes — byte-identical to the in-core chunked streams.
  const auto streamed_cr = [&](const comp::CodecPtr& codec) {
    const auto* chunked = dynamic_cast<const comp::ChunkedCodec*>(codec.get());
    CESM_REQUIRE(chunked != nullptr);
    const comp::Codec& inner = *chunked->inner();
    std::vector<float> b0(max_chunk);
    std::vector<float> b1(max_chunk);
    std::vector<std::size_t> sizes(store.chunk_count());
    const std::vector<std::size_t>& offsets = store.chunk_offsets();
    walk_member_chunks(
        store, static_cast<std::uint32_t>(probe), b0, b1,
        [&](std::size_t c, std::span<const float> x) {
          const comp::Shape cs =
              chunked->chunk_shape(store.shape(), offsets[c], offsets[c + 1]);
          sizes[c] = plans
                         .encode(inner, x, cs,
                                 static_cast<std::uint64_t>(probe) * store.chunk_count() + c)
                         .size();
        });
    return comp::compression_ratio(chunked->packed_stream_bytes(store.shape(), sizes),
                                   store.total_elems());
  };
  result.character.summary = stats.member_summary(probe);
  result.character.lossless_cr = streamed_cr(
      with_chunking(std::make_shared<comp::DeflateCodec>(), config.chunk_elems));
  result.netcdf4_cr = result.character.lossless_cr;
  result.fpzip32_cr = streamed_cr(
      with_chunking(std::make_shared<comp::FpzCodec>(32), config.chunk_elems));

  const GribTuning tuning = tune_decimal_scale_streaming(
      store, stats, max_chunk, result.test_members, config, &plans);
  result.grib_decimal_scale = tuning.decimal_scale;
  result.grib_tuning_passed = tuning.passed;

  const std::vector<comp::CodecPtr> variants =
      comp::paper_variants(result.grib_decimal_scale, result.fill);

  // Failpoint pre-pass in catalog order — same rationale as run_variable
  // (suite.cpp): injected-fault attribution is independent of
  // variant_jobs and worker count.
  std::vector<std::string> injected(variants.size());
  std::vector<std::uint8_t> has_injection(variants.size(), 0);
  for (std::size_t v = 0; v < variants.size(); ++v) {
    try {
      CESM_FAILPOINT("suite.verify_variant");
    } catch (const Error& e) {
      has_injection[v] = 1;
      injected[v] = e.what();
    }
  }

  result.verdicts.resize(variants.size());
  const auto verify_one = [&](std::size_t v) {
    trace::counter_add("sweep.variant_tasks", 1);
    const comp::CodecPtr wrapped = with_chunking(variants[v], config.chunk_elems);
    const auto* chunked = dynamic_cast<const comp::ChunkedCodec*>(wrapped.get());
    CESM_REQUIRE(chunked != nullptr);
    result.verdicts[v] = verify_with_fallback_streaming(
        store, stats, *chunked, max_chunk, result.test_members, config, &plans,
        has_injection[v] != 0 ? &injected[v] : nullptr);
  };
  const std::size_t grain = variant_grain(suite.variant_jobs, variants.size());
  if (grain >= variants.size()) {
    for (std::size_t v = 0; v < variants.size(); ++v) verify_one(v);
  } else {
    // Verdict slots are fixed, so the CSV is byte-identical to the serial
    // sweep; each chunk walk allocates its own lane buffers, already
    // covered by the buffer_lanes()-wide verify_bytes charge above.
    parallel_for(0, variants.size(), verify_one, grain);
  }
  budget.release(verify_bytes);

  // Keep the reusable store within its byte budget: oldest spills go
  // first, the one this run just used is protected. Eviction of a file
  // another in-flight variable holds open is harmless (its fd survives
  // the unlink); that variable's next run simply restages.
  if (config.reuse_spill && config.spill_budget_bytes > 0) {
    const std::string protect[] = {path};
    const util::EvictionResult evicted = util::evict_directory_to_budget(
        config.spill_dir, ".cnk1", config.spill_budget_bytes, protect);
    if (evicted.files_removed > 0) {
      trace::counter_add("ooc.spill_evicted", evicted.files_removed);
    }
  }

  if (phases != nullptr) {
    phases->stage_seconds = stage_seconds;
    phases->stats_seconds = stats_seconds;
    phases->verify_seconds = seconds_since(t_verify);
    phases->bytes_spilled = static_cast<std::uint64_t>(store.total_elems()) *
                            store.member_count() * sizeof(float);
    phases->peak_logical_bytes = budget.peak_logical_bytes();
    phases->budget_cap_bytes = budget.cap_bytes();
  }
  return result;
}

namespace {

/// Streaming twin of run_variable_guarded: retry one-shot faults, then
/// contain the failure as a processing_failed marker.
VariableResult run_variable_streaming_guarded(const climate::EnsembleGenerator& ensemble,
                                              const climate::VariableSpec& spec,
                                              const OocConfig& config,
                                              util::MemoryBudget* shared = nullptr) {
  std::size_t failures = 0;
  for (;;) {
    try {
      return run_variable_streaming(ensemble, spec, config, nullptr, shared);
    } catch (const InvalidArgument&) {
      throw;  // caller bug: retrying cannot help and hiding it would lie
    } catch (const Error& e) {
      if (failures++ < config.suite.variable_retry_limit) {
        trace::counter_add("suite.variable_retries", 1);
        continue;
      }
      if (!config.suite.continue_on_variable_error) throw;
      trace::counter_add("suite.variable_failures", 1);
      VariableResult failed;
      failed.variable = spec.name;
      failed.is_3d = spec.is_3d;
      failed.processing_failed = true;
      failed.error_message = e.what();
      return failed;
    }
  }
}

}  // namespace

SuiteResults run_suite_streaming(const climate::EnsembleGenerator& ensemble,
                                 const OocConfig& config,
                                 std::vector<std::string> variables) {
  trace::Span span("ooc.run");
  SuiteResults results;

  const std::vector<const climate::VariableSpec*> specs =
      resolve_suite_specs(ensemble, variables);

  // One shared admission budget for every in-flight variable: the
  // bounded-memory promise is now "the *sum* of concurrent working sets
  // stays under the cap", enforced by all-or-nothing reservations.
  util::MemoryBudget own_budget(config.memory_budget_bytes);
  util::MemoryBudget& shared =
      config.shared_budget != nullptr ? *config.shared_budget : own_budget;

  std::size_t jobs = config.parallel_variables == 0
                         ? Scheduler::global().thread_count()
                         : config.parallel_variables;
  jobs = std::max<std::size_t>(1, std::min(jobs, specs.size()));

  // Fixed result slots keep the output byte-identical at any job count;
  // the atomic cursor only decides who computes what, never where it
  // lands or what it contains.
  results.variables.resize(specs.size());
  if (jobs == 1) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      results.variables[i] =
          run_variable_streaming_guarded(ensemble, *specs[i], config, &shared);
    }
  } else {
    // Variable jobs live on dedicated admission threads, NOT on scheduler
    // workers: a parked reservation must never occupy a worker the
    // admitted variables need to make progress (that would deadlock the
    // backpressure). The inner parallel_for/parallel_reduce work still
    // lands on the global work-stealing scheduler — external threads
    // help-execute their own joins, so admission threads add concurrency
    // without oversubscribing the worker pool.
    std::atomic<std::size_t> cursor{0};
    std::mutex error_mu;
    std::exception_ptr first_error;
    std::vector<std::thread> admission;
    admission.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j) {
      admission.emplace_back([&] {
        for (;;) {
          const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= specs.size()) return;
          try {
            results.variables[i] =
                run_variable_streaming_guarded(ensemble, *specs[i], config, &shared);
          } catch (...) {
            {
              std::lock_guard<std::mutex> lock(error_mu);
              if (!first_error) first_error = std::current_exception();
            }
            // Stop dispatching new variables; in-flight ones finish.
            cursor.store(specs.size(), std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    for (std::thread& t : admission) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }
  if (const std::size_t failed = results.failed_variable_count(); failed > 0) {
    trace::counter_add("suite.variables_failed_total", failed);
  }
  derive_variant_names(results);
  return results;
}

}  // namespace cesm::core
