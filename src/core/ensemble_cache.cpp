#include "core/ensemble_cache.h"

#include <cstdio>
#include <filesystem>

#include "util/error.h"
#include "util/trace.h"

namespace cesm::core {

namespace {

// Salted into every key so a change to the key schema or the snapshot
// layout (rmsz.cpp kStatsFormatVersion bumps alongside this) can never
// alias an old disk entry.
constexpr std::uint64_t kKeySchemaVersion = 1;

void make_tiers(const util::CacheConfig& cfg,
                std::shared_ptr<util::LruCache<EnsembleStats>>& mem,
                std::shared_ptr<util::DiskCache>& disk) {
  mem = std::make_shared<util::LruCache<EnsembleStats>>(cfg.max_bytes);
  disk = nullptr;
  if (!cfg.enabled || cfg.disk_dir.empty()) return;
  try {
    // The disk tier shares the memory tier's byte budget as its per-entry
    // ceiling: a snapshot too big to ever be admitted in memory would only
    // burn disk space. CESM_CACHE_DISK_MB additionally bounds the whole
    // directory, evicted oldest-first after each write.
    disk = std::make_shared<util::DiskCache>(cfg.disk_dir, "stats", cfg.max_bytes,
                                             cfg.disk_max_bytes);
  } catch (const Error& e) {
    // An unusable cache directory must not take down the run; fall back
    // to the memory tier alone.
    std::fprintf(stderr, "CESM_CACHE_DIR unusable, disk tier disabled: %s\n",
                 e.what());
  }
}

}  // namespace

EnsembleCache& EnsembleCache::global() {
  static EnsembleCache* instance =
      new EnsembleCache(util::CacheConfig::from_env());
  return *instance;
}

EnsembleCache::EnsembleCache(util::CacheConfig cfg) : cfg_(std::move(cfg)) {
  make_tiers(cfg_, tiers_.mem, tiers_.disk);
}

void EnsembleCache::configure(util::CacheConfig cfg) {
  std::lock_guard lock(mu_);
  cfg_ = std::move(cfg);
  make_tiers(cfg_, tiers_.mem, tiers_.disk);
}

EnsembleCache::Tiers EnsembleCache::tiers() const {
  std::lock_guard lock(mu_);
  return tiers_;
}

bool EnsembleCache::enabled() const {
  std::lock_guard lock(mu_);
  return cfg_.enabled;
}

bool EnsembleCache::has_disk_tier() const { return tiers().disk != nullptr; }

util::CacheStats EnsembleCache::memory_stats() const { return tiers().mem->stats(); }

std::uint64_t EnsembleCache::key(const climate::EnsembleSpec& spec,
                                 const climate::VariableSpec& var) {
  util::KeyHasher h;
  h.u64(kKeySchemaVersion);
  // Ensemble side: grid shape, member count, full latent dynamics spec.
  h.u64(spec.grid.nlat).u64(spec.grid.nlon).u64(spec.grid.nlev);
  h.u64(spec.members);
  h.u64(spec.latent.k)
      .f64(spec.latent.forcing)
      .f64(spec.latent.dt)
      .u64(spec.latent.spinup_steps)
      .u64(spec.latent.average_steps)
      .u64(spec.latent.seed);
  // Variable side: every VariableSpec field that shapes the synthesis.
  h.str(var.name)
      .str(var.units)
      .str(var.description)
      .boolean(var.is_3d)
      .u64(static_cast<std::uint64_t>(var.transform))
      .f64(var.center)
      .f64(var.scale)
      .f64(var.log_mu)
      .f64(var.log_sigma)
      .f64(var.bound_lo)
      .f64(var.bound_hi)
      .f64(var.smoothness)
      .f64(var.noise_frac)
      .f64(var.anomaly_frac)
      .f64(var.vertical_gradient)
      .f64(var.vertical_scale)
      .boolean(var.has_fill)
      .u64(var.stream);
  return h.digest();
}

std::shared_ptr<const EnsembleStats> EnsembleCache::stats(
    const climate::EnsembleGenerator& ensemble, const climate::VariableSpec& var) {
  const Tiers t = tiers();
  const bool use_cache = [&] {
    std::lock_guard lock(mu_);
    return cfg_.enabled;
  }();
  if (!use_cache) {
    return std::make_shared<EnsembleStats>(ensemble.ensemble_fields(var));
  }

  const std::uint64_t k = key(ensemble.spec(), var);
  if (auto hit = t.mem->get(k)) return hit;

  if (t.disk) {
    if (std::optional<Bytes> payload = t.disk->read(k)) {
      try {
        ByteReader r(*payload);
        auto stats = std::make_shared<EnsembleStats>(EnsembleStats::deserialize(r));
        if (!r.exhausted()) throw FormatError("trailing bytes in stats snapshot");
        t.mem->put(k, stats, stats->memory_bytes());
        return stats;
      } catch (const Error&) {
        // Checksum passed but the payload layout is stale or mangled:
        // same contract as container corruption — count, drop, rebuild.
        trace::counter_add("cache.disk_corrupt", 1);
        std::error_code ec;
        std::filesystem::remove(t.disk->entry_path(k), ec);
      }
    }
  }

  auto built = std::make_shared<EnsembleStats>(ensemble.ensemble_fields(var));
  t.mem->put(k, built, built->memory_bytes());
  if (t.disk) {
    Bytes payload;
    ByteWriter w(payload);
    built->serialize(w);
    t.disk->write(k, payload);
  }
  return built;
}

}  // namespace cesm::core
