#pragma once
// Structured export of suite results for external analysis (R/pandas) —
// the verification methodology feeds climate scientists' own tooling, so
// results must leave the library in a neutral format.

#include <string>

#include "core/hybrid.h"
#include "core/suite.h"

namespace cesm::core {

/// Escape one CSV field per RFC 4180: fields containing a comma, quote,
/// CR or LF are quoted with embedded quotes doubled; all other values
/// pass through unchanged. Applied to every free-text column (variant
/// names, fallback codecs, and especially error messages, which contain
/// commas whenever a codec exception mentions sizes or offsets).
std::string csv_field(const std::string& value);

/// One CSV row per (variable, variant): test outcomes, CR and error
/// metrics. Columns:
///   variable,is_3d,variant,cr,pearson,nrmse,e_nmax,rmsz_diff,
///   rho_pass,rmsz_pass,enmax_pass,bias_pass,all_pass,
///   bias_slope,bias_intercept,bias_slope_distance,grib_decimal_scale,
///   codec_error,fallback_codec,error_message
std::string suite_results_csv(const SuiteResults& results);

/// One CSV row per (family, variable) hybrid selection. Columns:
///   family,variable,variant,cr,pearson,nrmse,e_nmax,lossless_fallback
std::string hybrid_selections_csv(std::span<const HybridSummary> hybrids);

/// Write a string to a file atomically (temp + rename; throws IoError).
/// Readers — and interrupted runs — see either the old file or the
/// complete new one, never a torn intermediate.
void write_text_file(const std::string& path, const std::string& contents);

}  // namespace cesm::core
