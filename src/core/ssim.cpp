#include "core/ssim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace cesm::core {

namespace {

/// SSIM of one tile given accumulated moments.
double tile_ssim(double sum_x, double sum_y, double sum_xx, double sum_yy, double sum_xy,
                 double n, double c1, double c2) {
  const double mu_x = sum_x / n;
  const double mu_y = sum_y / n;
  const double var_x = std::max(0.0, sum_xx / n - mu_x * mu_x);
  const double var_y = std::max(0.0, sum_yy / n - mu_y * mu_y);
  const double cov = sum_xy / n - mu_x * mu_y;
  const double num = (2.0 * mu_x * mu_y + c1) * (2.0 * cov + c2);
  const double den = (mu_x * mu_x + mu_y * mu_y + c1) * (var_x + var_y + c2);
  return den > 0.0 ? num / den : 1.0;
}

}  // namespace

double ssim_2d(std::span<const float> x, std::span<const float> y, std::size_t rows,
               std::size_t cols, const SsimOptions& options) {
  CESM_REQUIRE(x.size() == rows * cols);
  CESM_REQUIRE(y.size() == x.size());
  CESM_REQUIRE(options.window >= 2);
  CESM_REQUIRE(rows >= 1 && cols >= 1);

  // Dynamic range of the original field.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (float v : x) {
    lo = std::min(lo, static_cast<double>(v));
    hi = std::max(hi, static_cast<double>(v));
  }
  const double range = hi > lo ? hi - lo : 1.0;
  const double c1 = (options.k1 * range) * (options.k1 * range);
  const double c2 = (options.k2 * range) * (options.k2 * range);

  const std::size_t w = options.window;
  double total = 0.0;
  std::size_t tiles = 0;
  for (std::size_t r0 = 0; r0 < rows; r0 += w) {
    for (std::size_t c0 = 0; c0 < cols; c0 += w) {
      const std::size_t r1 = std::min(rows, r0 + w);
      const std::size_t c1b = std::min(cols, c0 + w);
      double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
      for (std::size_t r = r0; r < r1; ++r) {
        for (std::size_t c = c0; c < c1b; ++c) {
          const double a = x[r * cols + c];
          const double b = y[r * cols + c];
          sx += a;
          sy += b;
          sxx += a * a;
          syy += b * b;
          sxy += a * b;
        }
      }
      const auto n = static_cast<double>((r1 - r0) * (c1b - c0));
      total += tile_ssim(sx, sy, sxx, syy, sxy, n, c1, c2);
      ++tiles;
    }
  }
  return total / static_cast<double>(tiles);
}

double ssim_field(const climate::Field& original, std::span<const float> reconstructed,
                  std::size_t nlat, std::size_t nlon, const SsimOptions& options) {
  CESM_REQUIRE(reconstructed.size() == original.size());
  const std::size_t ncol = nlat * nlon;
  CESM_REQUIRE(original.size() % ncol == 0);
  const std::size_t levels = original.size() / ncol;

  double total = 0.0;
  for (std::size_t l = 0; l < levels; ++l) {
    total += ssim_2d(std::span<const float>(original.data).subspan(l * ncol, ncol),
                     reconstructed.subspan(l * ncol, ncol), nlat, nlon, options);
  }
  return total / static_cast<double>(levels);
}

}  // namespace cesm::core
