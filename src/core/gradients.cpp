#include "core/gradients.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace cesm::core {

GradientFields compute_gradients(std::span<const float> data, const climate::Grid& grid,
                                 std::optional<float> fill) {
  const std::size_t ncol = grid.columns();
  CESM_REQUIRE(data.size() % ncol == 0);
  const std::size_t levels = data.size() / ncol;
  const std::size_t nlat = grid.spec().nlat;
  const std::size_t nlon = grid.spec().nlon;
  constexpr double pi = std::numbers::pi;
  const double dlon = 2.0 * pi / static_cast<double>(nlon);
  const double dlat = pi / static_cast<double>(nlat);

  GradientFields g;
  g.zonal.resize(data.size());
  g.meridional.resize(data.size());
  const bool masked = fill.has_value();
  if (masked) g.valid.assign(data.size(), 1);

  const auto is_fill = [&](std::size_t idx) { return masked && data[idx] == *fill; };

  for (std::size_t l = 0; l < levels; ++l) {
    const std::size_t base = l * ncol;
    for (std::size_t row = 0; row < nlat; ++row) {
      for (std::size_t col = 0; col < nlon; ++col) {
        const std::size_t i = base + row * nlon + col;
        // Zonal: periodic centred difference along the latitude circle.
        const std::size_t east = base + row * nlon + (col + 1) % nlon;
        const std::size_t west = base + row * nlon + (col + nlon - 1) % nlon;
        // Meridional: centred inside, one-sided at polar rows.
        const std::size_t north = row + 1 < nlat ? i + nlon : i;
        const std::size_t south = row > 0 ? i - nlon : i;
        const double dy_span = (north == i || south == i) ? dlat : 2.0 * dlat;

        if (is_fill(i) || is_fill(east) || is_fill(west) || is_fill(north) ||
            is_fill(south)) {
          g.zonal[i] = 0.0f;
          g.meridional[i] = 0.0f;
          g.valid[i] = 0;
          continue;
        }
        g.zonal[i] = static_cast<float>(
            (static_cast<double>(data[east]) - static_cast<double>(data[west])) /
            (2.0 * dlon));
        g.meridional[i] = static_cast<float>(
            (static_cast<double>(data[north]) - static_cast<double>(data[south])) /
            dy_span);
      }
    }
  }
  return g;
}

GradientMetrics compare_gradients(const climate::Field& original,
                                  std::span<const float> reconstructed,
                                  const climate::Grid& grid) {
  CESM_REQUIRE(reconstructed.size() == original.size());
  const GradientFields a = compute_gradients(original.data, grid, original.fill);
  const GradientFields b = compute_gradients(reconstructed, grid, original.fill);

  GradientMetrics m;
  m.zonal = compare_fields(a.zonal, b.zonal, a.valid);
  m.meridional = compare_fields(a.meridional, b.meridional, a.valid);
  return m;
}

}  // namespace cesm::core
