#include "core/suite.h"

#include "compress/deflate/deflate.h"
#include "compress/fpz/fpz.h"
#include "compress/variants.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/scheduler.h"
#include "util/trace.h"

namespace cesm::core {

std::vector<MethodTally> SuiteResults::tally() const {
  std::vector<MethodTally> rows;
  for (std::size_t v = 0; v < variant_names.size(); ++v) {
    MethodTally row;
    row.codec = variant_names[v];
    for (const VariableResult& var : variables) {
      const VariableVerdict& verdict = var.verdicts[v];
      row.rho += verdict.rho_pass ? 1 : 0;
      row.rmsz += verdict.rmsz_pass ? 1 : 0;
      row.enmax += verdict.enmax_pass ? 1 : 0;
      row.bias += verdict.bias_pass ? 1 : 0;
      row.all += verdict.all_pass() ? 1 : 0;
    }
    rows.push_back(row);
  }
  return rows;
}

std::size_t SuiteResults::variant_index(const std::string& name) const {
  for (std::size_t i = 0; i < variant_names.size(); ++i) {
    if (variant_names[i] == name) return i;
  }
  throw InvalidArgument("variant not in suite results: " + name);
}

const VariableResult& SuiteResults::variable(const std::string& name) const {
  for (const VariableResult& v : variables) {
    if (v.variable == name) return v;
  }
  throw InvalidArgument("variable not in suite results: " + name);
}

VariableResult run_variable(const climate::EnsembleGenerator& ensemble,
                            const climate::VariableSpec& spec,
                            const SuiteConfig& config) {
  trace::Span span("suite.variable");
  trace::counter_add("suite.variables", 1);
  // test_members.front() below (and every downstream verify) requires at
  // least one probe member; a zero count used to slip through pick_members
  // and dereference an empty vector.
  if (config.test_member_count == 0) {
    throw InvalidArgument("SuiteConfig::test_member_count must be >= 1 (variable " +
                          spec.name + ")");
  }
  VariableResult result;
  result.variable = spec.name;
  result.is_3d = spec.is_3d;
  if (spec.has_fill) result.fill = climate::kFillValue;

  const EnsembleStats stats(ensemble.ensemble_fields(spec));
  const PvtVerifier verifier(stats, config.thresholds);

  result.test_members = PvtVerifier::pick_members(
      config.test_member_count, stats.member_count(),
      hash_combine(config.member_seed, spec.stream));

  // Characterization + lossless baselines on the first test member.
  const climate::Field& probe = stats.member(result.test_members.front());
  result.character = characterize(probe);
  result.netcdf4_cr = result.character.lossless_cr;
  {
    const comp::FpzCodec fpz32(32);
    const Bytes s = fpz32.encode(probe.data, probe.shape);
    result.fpzip32_cr = comp::compression_ratio(s.size(), probe.data.size());
  }

  // RMSZ-guided GRIB2 decimal scale (§5.4).
  const GribTuning tuning = rmsz_guided_decimal_scale(
      stats, result.fill, result.test_members, config.thresholds,
      config.grib_significant_digits, config.grib_max_extra_digits);
  result.grib_decimal_scale = tuning.decimal_scale;
  result.grib_tuning_passed = tuning.passed;

  const std::vector<comp::CodecPtr> variants =
      comp::paper_variants(result.grib_decimal_scale, result.fill);
  for (const comp::CodecPtr& codec : variants) {
    result.verdicts.push_back(
        verifier.verify(*codec, result.test_members, config.run_bias));
  }
  return result;
}

SuiteResults run_suite(const climate::EnsembleGenerator& ensemble,
                       const SuiteConfig& config,
                       std::vector<std::string> variables) {
  trace::Span span("suite.run");
  SuiteResults results;

  std::vector<const climate::VariableSpec*> specs;
  if (variables.empty()) {
    for (const climate::VariableSpec& spec : ensemble.catalog()) specs.push_back(&spec);
  } else {
    for (const std::string& name : variables) specs.push_back(&ensemble.variable(name));
  }

  results.variables.resize(specs.size());
  parallel_for(0, specs.size(), [&](std::size_t i) {
    results.variables[i] = run_variable(ensemble, *specs[i], config);
  });

  // Derive the variant-name row from the verdicts actually recorded, not
  // from a separately-built paper_variants() list: tally() pairs
  // variant_names[v] with verdicts[v], so any name/order divergence
  // between the two constructions would silently misattribute verdicts.
  // Every variable must agree on the same variant row.
  if (!results.variables.empty()) {
    for (const VariableVerdict& verdict : results.variables.front().verdicts) {
      results.variant_names.push_back(verdict.codec);
    }
    for (const VariableResult& var : results.variables) {
      CESM_REQUIRE(var.verdicts.size() == results.variant_names.size());
      for (std::size_t v = 0; v < var.verdicts.size(); ++v) {
        CESM_REQUIRE(var.verdicts[v].codec == results.variant_names[v]);
      }
    }
  } else {
    // No variables swept: fall back to the canonical list (decimal scale
    // is a dummy; the table label is just "GRIB2" regardless).
    for (const comp::CodecPtr& codec : comp::paper_variants(4)) {
      results.variant_names.push_back(codec->name());
    }
  }
  return results;
}

}  // namespace cesm::core
