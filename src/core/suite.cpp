#include "core/suite.h"

#include "compress/chunked.h"
#include "compress/deflate/deflate.h"
#include "compress/fpz/fpz.h"
#include "compress/variants.h"
#include "core/ensemble_cache.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/scheduler.h"
#include "util/trace.h"

namespace cesm::core {

std::vector<MethodTally> SuiteResults::tally() const {
  std::vector<MethodTally> rows;
  for (std::size_t v = 0; v < variant_names.size(); ++v) {
    MethodTally row;
    row.codec = variant_names[v];
    for (const VariableResult& var : variables) {
      if (var.processing_failed) continue;
      const VariableVerdict& verdict = var.verdicts[v];
      row.rho += verdict.rho_pass ? 1 : 0;
      row.rmsz += verdict.rmsz_pass ? 1 : 0;
      row.enmax += verdict.enmax_pass ? 1 : 0;
      row.bias += verdict.bias_pass ? 1 : 0;
      row.all += verdict.all_pass() ? 1 : 0;
    }
    rows.push_back(row);
  }
  return rows;
}

std::size_t SuiteResults::failed_variable_count() const {
  std::size_t n = 0;
  for (const VariableResult& v : variables) n += v.processing_failed ? 1 : 0;
  return n;
}

std::size_t SuiteResults::variant_index(const std::string& name) const {
  if (const auto it = variant_lookup.find(name); it != variant_lookup.end()) {
    return it->second;
  }
  // Hand-assembled results may fill variant_names without running
  // derive_variant_names; keep the scan as their fallback.
  for (std::size_t i = 0; i < variant_names.size(); ++i) {
    if (variant_names[i] == name) return i;
  }
  throw InvalidArgument("variant not in suite results: " + name);
}

const VariableResult& SuiteResults::variable(const std::string& name) const {
  for (const VariableResult& v : variables) {
    if (v.variable == name) return v;
  }
  throw InvalidArgument("variable not in suite results: " + name);
}

comp::CodecPtr with_chunking(comp::CodecPtr codec, std::size_t chunk_elems) {
  if (chunk_elems == 0) return codec;
  return std::make_shared<comp::ChunkedCodec>(std::move(codec), chunk_elems);
}

comp::CodecPtr lossless_stand_in(const std::string& failed_codec,
                                 std::optional<float> fill,
                                 std::size_t chunk_elems) {
  comp::CodecPtr codec;
  if (failed_codec.rfind("fpzip", 0) == 0) {
    codec = comp::with_fill_handling(std::make_shared<comp::FpzCodec>(32), fill);
  } else {
    codec = std::make_shared<comp::DeflateCodec>();
  }
  return with_chunking(comp::traced(std::move(codec)), chunk_elems);
}

namespace {

/// Record a codec-error verdict (never a pass) for a variant whose verify
/// threw `message`, re-scored under the lossless stand-in when the
/// fallback policy is on.
VariableVerdict codec_error_verdict(const PvtVerifier& verifier, const comp::Codec& codec,
                                    std::optional<float> fill,
                                    std::span<const std::size_t> test_members,
                                    const SuiteConfig& config,
                                    const std::string& message) {
  trace::counter_add("suite.codec_errors", 1);
  VariableVerdict verdict;
  verdict.variable = verifier.stats().member(0).name;
  verdict.codec = codec.name();
  verdict.codec_error = true;
  verdict.error_message = message;
  if (config.lossless_fallback) {
    const comp::CodecPtr stand_in =
        lossless_stand_in(codec.name(), fill, config.chunk_elems);
    try {
      VariableVerdict lossless =
          verifier.verify(*stand_in, test_members, config.run_bias);
      // Informational only: the variant's pass flags stay false — the
      // data really delivered came from the stand-in, and what we are
      // certifying is the lossy method.
      verdict.members = std::move(lossless.members);
      verdict.mean_cr = lossless.mean_cr;
      verdict.bias = lossless.bias;
      verdict.bias_evaluated = lossless.bias_evaluated;
      verdict.fallback_codec = stand_in->name();
      trace::counter_add("suite.lossless_fallbacks", 1);
    } catch (const Error&) {
      // The stand-in failed too (e.g. its decode is also poisoned):
      // keep the bare codec-error verdict.
    }
  }
  return verdict;
}

/// verify() one variant; a thrown cesm::Error becomes a codec-error
/// verdict. Non-null `injected` is an error already raised for this
/// variant by the caller's catalog-order failpoint pre-pass: the verify is
/// skipped and the codec-error path runs directly — exactly what the
/// in-line CESM_FAILPOINT("suite.verify_variant") used to produce, but
/// with the injection decided at a deterministic point so parallel sweeps
/// attribute faults to the same variants as the serial schedule.
VariableVerdict verify_with_fallback(const PvtVerifier& verifier, const comp::Codec& codec,
                                     std::optional<float> fill,
                                     std::span<const std::size_t> test_members,
                                     const SuiteConfig& config,
                                     const std::string* injected = nullptr) {
  if (injected != nullptr) {
    return codec_error_verdict(verifier, codec, fill, test_members, config, *injected);
  }
  try {
    return verifier.verify(codec, test_members, config.run_bias);
  } catch (const InvalidArgument&) {
    throw;  // caller bug, not a codec failure: keep the old contract
  } catch (const Error& e) {
    return codec_error_verdict(verifier, codec, fill, test_members, config, e.what());
  }
}

}  // namespace

VariableResult run_variable(const climate::EnsembleGenerator& ensemble,
                            const climate::VariableSpec& spec,
                            const SuiteConfig& config,
                            const comp::VariantPool* pool) {
  trace::Span span("suite.variable");
  trace::counter_add("suite.variables", 1);
  // test_members.front() below (and every downstream verify) requires at
  // least one probe member; a zero count used to slip through pick_members
  // and dereference an empty vector.
  if (config.test_member_count == 0) {
    throw InvalidArgument("SuiteConfig::test_member_count must be >= 1 (variable " +
                          spec.name + ")");
  }
  CESM_FAILPOINT("suite.variable");
  VariableResult result;
  result.variable = spec.name;
  result.is_3d = spec.is_3d;
  if (spec.has_fill) result.fill = climate::kFillValue;

  // Memoized ensemble products: repetitions, variants and sibling bench
  // tools all share one synthesis + stats build per (ensemble, variable)
  // key. With the cache disabled this is a plain build.
  const std::shared_ptr<const EnsembleStats> stats_ptr =
      EnsembleCache::global().stats(ensemble, spec);
  const EnsembleStats& stats = *stats_ptr;

  // One plan store per variable: the variant-invariant encode stages
  // (fpzip ordered map, ISABELA sort + fit, GRIB2 scans and wavelet lift)
  // are computed once per member here and reused across the lossless
  // probe, the GRIB2 tuning ladder and every variant verify below. Plans
  // are pure memoization — every stream stays byte-identical (prep.h).
  comp::PlanStore plans(config.plan_cache_bytes);
  PvtVerifier verifier(stats, config.thresholds);
  verifier.set_plan_store(&plans);

  result.test_members = PvtVerifier::pick_members(
      config.test_member_count, stats.member_count(),
      hash_combine(config.member_seed, spec.stream));

  // Characterization + lossless baselines on the first test member. With
  // chunk_elems set, both baselines measure the chunked container stream —
  // the same stream the out-of-core leg sizes via packed_stream_bytes.
  const climate::Field& probe = stats.member(result.test_members.front());
  result.character = characterize(
      probe, *with_chunking(std::make_shared<comp::DeflateCodec>(), config.chunk_elems));
  result.netcdf4_cr = result.character.lossless_cr;
  {
    // The probe's fpzip-32 stream seeds the plan store: when the variable
    // has no fill value, the fpzip variants below reuse the ordered map
    // this encode builds for the probe member.
    const comp::CodecPtr fpz32 =
        with_chunking(std::make_shared<comp::FpzCodec>(32), config.chunk_elems);
    const Bytes s =
        plans.encode(*fpz32, probe.data, probe.shape, result.test_members.front());
    result.fpzip32_cr = comp::compression_ratio(s.size(), probe.data.size());
  }

  // RMSZ-guided GRIB2 decimal scale (§5.4). Sharing `plans` leaves the
  // winning scale's wavelet lift cached for the GRIB2 variant verify.
  const GribTuning tuning = rmsz_guided_decimal_scale(
      stats, result.fill, result.test_members, config.thresholds,
      config.grib_significant_digits, config.grib_max_extra_digits,
      config.chunk_elems, &plans);
  result.grib_decimal_scale = tuning.decimal_scale;
  result.grib_tuning_passed = tuning.passed;

  const std::vector<comp::CodecPtr> variants =
      pool != nullptr ? pool->assemble(result.grib_decimal_scale, result.fill)
                      : comp::paper_variants(result.grib_decimal_scale, result.fill);

  // Failpoint pre-pass: hit "suite.verify_variant" once per variant in
  // catalog order before any verify runs, so stateful triggers (once,
  // nth, prob) select the same variants at every variant_jobs setting as
  // the historical serial loop did.
  std::vector<std::string> injected(variants.size());
  std::vector<std::uint8_t> has_injection(variants.size(), 0);
  for (std::size_t v = 0; v < variants.size(); ++v) {
    try {
      CESM_FAILPOINT("suite.verify_variant");
    } catch (const Error& e) {
      has_injection[v] = 1;
      injected[v] = e.what();
    }
  }

  result.verdicts.resize(variants.size());
  const std::size_t grain = variant_grain(config.variant_jobs, variants.size());
  if (grain >= variants.size()) {
    // Serial catalog order (the default): one verifier, whose scratch
    // arena warms on the first variant and serves the rest allocation-free.
    for (std::size_t v = 0; v < variants.size(); ++v) {
      trace::counter_add("sweep.variant_tasks", 1);
      const comp::CodecPtr wrapped = with_chunking(variants[v], config.chunk_elems);
      result.verdicts[v] =
          verify_with_fallback(verifier, *wrapped, result.fill, result.test_members,
                               config, has_injection[v] != 0 ? &injected[v] : nullptr);
    }
  } else {
    // Parallel sweep: verdicts land in fixed catalog-order slots, so the
    // results are byte-identical to the serial path at any worker count.
    // verify() must not run concurrently on one verifier (shared scratch
    // arena), so each task builds its own; they all share `plans`.
    parallel_for(
        0, variants.size(),
        [&](std::size_t v) {
          trace::counter_add("sweep.variant_tasks", 1);
          const comp::CodecPtr wrapped = with_chunking(variants[v], config.chunk_elems);
          PvtVerifier task_verifier(stats, config.thresholds);
          task_verifier.set_plan_store(&plans);
          result.verdicts[v] = verify_with_fallback(
              task_verifier, *wrapped, result.fill, result.test_members, config,
              has_injection[v] != 0 ? &injected[v] : nullptr);
        },
        grain);
  }
  return result;
}

namespace {

/// run_variable with the suite's containment policy: retry after a
/// whole-variable failure (one-shot injected faults clear themselves), and
/// when retries are exhausted return a processing_failed marker instead of
/// tearing down the other 100+ variables of the sweep.
VariableResult run_variable_guarded(const climate::EnsembleGenerator& ensemble,
                                    const climate::VariableSpec& spec,
                                    const SuiteConfig& config,
                                    const comp::VariantPool* pool) {
  std::size_t failures = 0;
  for (;;) {
    try {
      return run_variable(ensemble, spec, config, pool);
    } catch (const InvalidArgument&) {
      throw;  // caller bug: retrying cannot help and hiding it would lie
    } catch (const Error& e) {
      if (failures++ < config.variable_retry_limit) {
        trace::counter_add("suite.variable_retries", 1);
        continue;
      }
      if (!config.continue_on_variable_error) throw;
      trace::counter_add("suite.variable_failures", 1);
      VariableResult failed;
      failed.variable = spec.name;
      failed.is_3d = spec.is_3d;
      failed.processing_failed = true;
      failed.error_message = e.what();
      return failed;
    }
  }
}

}  // namespace

std::vector<const climate::VariableSpec*> resolve_suite_specs(
    const climate::EnsembleGenerator& ensemble,
    const std::vector<std::string>& variables) {
  std::vector<const climate::VariableSpec*> specs;
  if (variables.empty()) {
    specs.reserve(ensemble.catalog().size());
    for (const climate::VariableSpec& spec : ensemble.catalog()) specs.push_back(&spec);
  } else {
    specs.reserve(variables.size());
    for (const std::string& name : variables) specs.push_back(&ensemble.variable(name));
  }
  return specs;
}

SuiteResults run_suite(const climate::EnsembleGenerator& ensemble,
                       const SuiteConfig& config,
                       std::vector<std::string> variables) {
  trace::Span span("suite.run");
  SuiteResults results;

  const std::vector<const climate::VariableSpec*> specs =
      resolve_suite_specs(ensemble, variables);

  // One variant pool per run: the eight tuning-independent codecs are
  // assembled once and shared by every variable's sweep (only the GRIB2
  // entry, which carries the tuned decimal scale, is built per variable).
  comp::VariantPool pool;
  results.variables.resize(specs.size());
  parallel_for(0, specs.size(), [&](std::size_t i) {
    results.variables[i] = run_variable_guarded(ensemble, *specs[i], config, &pool);
  });
  if (const std::size_t failed = results.failed_variable_count(); failed > 0) {
    trace::counter_add("suite.variables_failed_total", failed);
  }

  derive_variant_names(results);
  return results;
}

void derive_variant_names(SuiteResults& results) {
  // Derive the variant-name row from the verdicts actually recorded, not
  // from a separately-built paper_variants() list: tally() pairs
  // variant_names[v] with verdicts[v], so any name/order divergence
  // between the two constructions would silently misattribute verdicts.
  // Every processed variable must agree on the same variant row;
  // processing_failed variables recorded no verdicts and are skipped.
  const VariableResult* first_ok = nullptr;
  for (const VariableResult& var : results.variables) {
    if (!var.processing_failed) {
      first_ok = &var;
      break;
    }
  }
  if (first_ok != nullptr) {
    for (const VariableVerdict& verdict : first_ok->verdicts) {
      results.variant_names.push_back(verdict.codec);
    }
    for (const VariableResult& var : results.variables) {
      if (var.processing_failed) continue;
      CESM_REQUIRE(var.verdicts.size() == results.variant_names.size());
      for (std::size_t v = 0; v < var.verdicts.size(); ++v) {
        CESM_REQUIRE(var.verdicts[v].codec == results.variant_names[v]);
      }
    }
  } else {
    // No variables swept (or none survived): fall back to the canonical
    // list (decimal scale is a dummy; the table label is just "GRIB2"
    // regardless).
    for (const comp::CodecPtr& codec : comp::paper_variants(4)) {
      results.variant_names.push_back(codec->name());
    }
  }
  results.variant_lookup.clear();
  results.variant_lookup.reserve(results.variant_names.size());
  for (std::size_t i = 0; i < results.variant_names.size(); ++i) {
    results.variant_lookup.emplace(results.variant_names[i], i);
  }
}

}  // namespace cesm::core
