#pragma once
// Cross-run memoization of the ensemble side of the PVT (§4, eqs. 6-11).
//
// The methodology's acceptance tests compare a *reconstructed* dataset
// against distributions computed purely from the perturbation ensemble:
// the RMSZ histogram, the E_nmax distribution, per-member ranges and
// global means. None of that depends on the codec under test, yet the
// suite and every bench tool rebuild it per variant, per repetition, per
// process. This cache keys the complete EnsembleStats product (members +
// every derived array) by a stable content hash of everything that
// determines it — grid shape, member count, the Lorenz-96 latent spec
// (including its seed) and the full VariableSpec — so one synthesis
// serves all of them.
//
// Two tiers (util/cache.h):
//   * an in-memory byte-budgeted LRU shared by all threads of a process,
//   * an optional on-disk tier (CESM_CACHE_DIR) shared across processes
//     and runs; entries are checksummed and versioned, and anything
//     stale, truncated or corrupt is regenerated, never trusted.
//
// Determinism contract: EnsembleStats::build() is bit-deterministic at
// any thread count and serialization round-trips exact bits, so a run
// with a warm cache (either tier), a cold cache, or the cache disabled
// produces bit-identical results. tests/core/test_ensemble_cache.cpp
// locks this in.

#include <memory>
#include <mutex>

#include "climate/ensemble.h"
#include "core/rmsz.h"
#include "util/cache.h"

namespace cesm::core {

class EnsembleCache {
 public:
  /// Process-wide instance, configured from the environment (CESM_CACHE,
  /// CESM_CACHE_MB, CESM_CACHE_DIR) on first use.
  static EnsembleCache& global();

  explicit EnsembleCache(util::CacheConfig cfg);

  /// Replace the configuration. Drops every resident entry (the disk
  /// tier, if any, keeps its files — they are validated on read).
  void configure(util::CacheConfig cfg);

  /// The EnsembleStats for (ensemble, var): served from memory, then
  /// disk, then built from a fresh synthesis (and inserted into both
  /// tiers). With the cache disabled this degenerates to a plain build.
  /// Thread-safe; concurrent callers may build duplicates (first insert
  /// wins — builds are deterministic so the duplicates are identical).
  [[nodiscard]] std::shared_ptr<const EnsembleStats> stats(
      const climate::EnsembleGenerator& ensemble, const climate::VariableSpec& var);

  /// Content hash of everything that determines stats(ensemble, var).
  [[nodiscard]] static std::uint64_t key(const climate::EnsembleSpec& spec,
                                         const climate::VariableSpec& var);

  /// In-memory tier counters (hits/misses/evictions/bytes).
  [[nodiscard]] util::CacheStats memory_stats() const;

  [[nodiscard]] bool enabled() const;
  [[nodiscard]] bool has_disk_tier() const;

 private:
  struct Tiers {
    std::shared_ptr<util::LruCache<EnsembleStats>> mem;
    std::shared_ptr<util::DiskCache> disk;  // null = no disk tier
  };
  [[nodiscard]] Tiers tiers() const;

  mutable std::mutex mu_;  // guards cfg_/tiers_ swaps, not the tiers themselves
  util::CacheConfig cfg_;
  Tiers tiers_;
};

}  // namespace cesm::core
