#pragma once
// §4.1–4.2 metrics: characterization of the original data and
// original-vs-reconstructed error measures.

#include <optional>
#include <span>

#include "climate/field.h"
#include "compress/codec.h"
#include "stats/descriptive.h"
#include "stats/kernels.h"

namespace cesm::core {

/// Table 2 row: characteristics of one variable's dataset.
struct Characterization {
  stats::Summary summary;  ///< min / max / mean / stddev over valid points
  double lossless_cr = 1.0;  ///< NetCDF-4 (deflate) CR, paper eq. (1)
};

/// Characterize a field: §4.1. Fill values are excluded from the moments;
/// the lossless CR is measured with the NetCDF-4-style deflate codec.
Characterization characterize(const climate::Field& field);

/// Characterization with an explicit lossless codec (e.g. the chunked
/// deflate the out-of-core pipeline measures chunk-by-chunk) and an
/// optional precomputed summary — both legs of a full-grid run must
/// measure the same stream to report the same CR.
Characterization characterize(const climate::Field& field, const comp::Codec& lossless,
                              std::optional<stats::Summary> summary = std::nullopt);

/// §4.2 error measures between original and reconstructed data. Fill
/// values are excluded ("we are careful not to include any special
/// values when calculating our metrics").
struct ErrorMetrics {
  double e_max = 0.0;    ///< max absolute pointwise error
  double e_nmax = 0.0;   ///< eq. (2): e_max / R_X
  double rmse = 0.0;     ///< eq. (3)
  double nrmse = 0.0;    ///< eq. (4): rmse / R_X
  double psnr = 0.0;     ///< peak signal-to-noise ratio, dB (for reference)
  double pearson = 0.0;  ///< eq. (5)
  std::size_t points = 0;
};

/// Compute all §4.2 metrics. `range` (R_X) defaults to the original
/// data's own range over valid points.
ErrorMetrics compare_fields(std::span<const float> original,
                            std::span<const float> reconstructed,
                            std::span<const std::uint8_t> valid_mask = {},
                            std::optional<double> range = std::nullopt);

ErrorMetrics compare_fields(const climate::Field& original,
                            std::span<const float> reconstructed);

/// The exact finalization compare_fields() applies to an error-norm
/// accumulation: `range`/`peak` come from the original data's summary
/// (range = max - min, peak = max(|min|, |max|)), `pearson` from eq. (5).
/// Shared with the streaming path, which builds the accumulation
/// chunk-by-chunk (stats::ErrorNormStream / CoMomentStream).
ErrorMetrics error_metrics_from(const stats::kernels::ErrorAccum& err, double range,
                                double peak, double pearson);

/// Acceptance threshold for the correlation test: the APAX profiler's
/// recommendation the paper adopts (§4.2).
inline constexpr double kPearsonThreshold = 0.99999;

}  // namespace cesm::core
