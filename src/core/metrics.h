#pragma once
// §4.1–4.2 metrics: characterization of the original data and
// original-vs-reconstructed error measures.

#include <optional>
#include <span>

#include "climate/field.h"
#include "stats/descriptive.h"

namespace cesm::core {

/// Table 2 row: characteristics of one variable's dataset.
struct Characterization {
  stats::Summary summary;  ///< min / max / mean / stddev over valid points
  double lossless_cr = 1.0;  ///< NetCDF-4 (deflate) CR, paper eq. (1)
};

/// Characterize a field: §4.1. Fill values are excluded from the moments;
/// the lossless CR is measured with the NetCDF-4-style deflate codec.
Characterization characterize(const climate::Field& field);

/// §4.2 error measures between original and reconstructed data. Fill
/// values are excluded ("we are careful not to include any special
/// values when calculating our metrics").
struct ErrorMetrics {
  double e_max = 0.0;    ///< max absolute pointwise error
  double e_nmax = 0.0;   ///< eq. (2): e_max / R_X
  double rmse = 0.0;     ///< eq. (3)
  double nrmse = 0.0;    ///< eq. (4): rmse / R_X
  double psnr = 0.0;     ///< peak signal-to-noise ratio, dB (for reference)
  double pearson = 0.0;  ///< eq. (5)
  std::size_t points = 0;
};

/// Compute all §4.2 metrics. `range` (R_X) defaults to the original
/// data's own range over valid points.
ErrorMetrics compare_fields(std::span<const float> original,
                            std::span<const float> reconstructed,
                            std::span<const std::uint8_t> valid_mask = {},
                            std::optional<double> range = std::nullopt);

ErrorMetrics compare_fields(const climate::Field& original,
                            std::span<const float> reconstructed);

/// Acceptance threshold for the correlation test: the APAX profiler's
/// recommendation the paper adopts (§4.2).
inline constexpr double kPearsonThreshold = 0.99999;

}  // namespace cesm::core
