#include "serve/server.h"

#include <poll.h>
#include <unistd.h>

#include <utility>

#include "core/ensemble_cache.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/trace.h"

namespace cesm::serve {

namespace {

/// Internal signal for an admission-control reject; converted to the
/// typed kQueueFull wire error in handle_verify. Never escapes the class.
struct AdmissionReject {};

std::uint64_t ensemble_spec_key(const climate::EnsembleSpec& spec) {
  util::KeyHasher h;
  h.str("cesmd.ensemble.v1");
  h.u64(spec.grid.nlat)
      .u64(spec.grid.nlon)
      .u64(spec.grid.nlev)
      .u64(spec.members)
      .u64(spec.latent.k)
      .f64(spec.latent.forcing)
      .f64(spec.latent.dt)
      .u64(spec.latent.spinup_steps)
      .u64(spec.latent.average_steps)
      .u64(spec.latent.seed);
  return h.digest();
}

}  // namespace

Server::Server(ServerConfig config) : config_(std::move(config)) {}

Server::~Server() { stop(); }

void Server::start() {
  CESM_REQUIRE(!started_.load());
  if (::pipe(wake_pipe_) != 0) throw IoError("cesmd: cannot create wake pipe");
  if (!config_.unix_path.empty()) {
    listener_ = util::listen_unix(config_.unix_path);
  } else {
    listener_ = util::listen_tcp(config_.tcp_port, &bound_port_);
  }
  started_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!started_.load()) return;
  {
    std::lock_guard lock(drain_mu_);
    if (draining_.load()) {
      // A second stop() only needs to wait for the first to finish; the
      // join below is what makes stop() idempotent, and the first caller
      // does all the work.
    }
    draining_.store(true);
  }
  // Wake the accept loop's poll and retire it: no new connections.
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Drain: every admitted request finishes and writes its response
  // before any socket is touched. New frames read meanwhile are answered
  // with kShuttingDown (they see draining_ under drain_mu_).
  {
    std::unique_lock lock(drain_mu_);
    drain_cv_.wait(lock, [this] { return active_requests_ == 0; });
  }

  // Unblock idle readers and join everything.
  {
    std::lock_guard lock(conn_mu_);
    for (const auto& conn : connections_) conn->socket.shutdown_both();
  }
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::lock_guard lock(conn_mu_);
      if (connections_.empty()) break;
      conn = std::move(connections_.back());
      connections_.pop_back();
    }
    if (conn->thread.joinable()) conn->thread.join();
  }
  listener_.close();
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listener_.fd(), POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0 || draining_.load()) return;
    if ((fds[0].revents & POLLIN) == 0) continue;

    util::Socket sock = util::accept_connection(listener_);
    if (!sock.valid()) continue;
    n_connections_.fetch_add(1, std::memory_order_relaxed);
    reap_connections();

    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(sock);
    Connection* raw = conn.get();
    {
      std::lock_guard lock(conn_mu_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { serve_connection(raw); });
  }
}

void Server::reap_connections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard lock(conn_mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside the lock; a done thread finishes immediately.
  for (const auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void Server::serve_connection(Connection* conn) {
  struct DoneGuard {
    Connection* c;
    ~DoneGuard() {
      // Shut down (not close: the fd stays reserved until the Connection
      // is reaped, so stop()'s own shutdown_both cannot race a reused
      // descriptor). Without this, a client waiting for EOF after a
      // framing error would block until the next reap.
      c->socket.shutdown_both();
      c->done.store(true, std::memory_order_release);
    }
  } done_guard{conn};
  const util::Socket& sock = conn->socket;
  try {
    for (;;) {
      std::optional<util::Frame> frame = util::read_frame(sock, config_.max_frame_bytes);
      if (!frame.has_value()) return;  // client closed cleanly

      switch (static_cast<MessageType>(frame->type)) {
        case MessageType::kPing:
          n_pings_.fetch_add(1, std::memory_order_relaxed);
          util::write_frame(sock, static_cast<std::uint8_t>(MessageType::kPong), {});
          break;
        case MessageType::kStatsRequest: {
          const Bytes payload = serialize_counters(counters());
          util::write_frame(sock, static_cast<std::uint8_t>(MessageType::kStatsResponse),
                            payload);
          break;
        }
        case MessageType::kVerifyRequest:
          handle_verify(sock, frame->payload);
          break;
        default:
          n_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          // The frame itself was well-formed, so the stream is still in
          // sync; answer and keep the connection.
          send_error(sock, ErrorCode::kUnsupportedType,
                     "unknown message type " + std::to_string(frame->type));
          break;
      }
    }
  } catch (const util::FrameTooLarge& e) {
    n_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    send_error(sock, ErrorCode::kOversizedFrame, e.what());
  } catch (const FormatError& e) {
    // Bad magic / torn header: the byte stream can no longer be framed,
    // so answer once and drop the connection.
    n_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    send_error(sock, ErrorCode::kMalformedFrame, e.what());
  } catch (const IoError&) {
    // Client vanished (mid-frame EOF, reset, send failure): nothing to
    // answer, nobody to answer it to.
  }
}

void Server::handle_verify(const util::Socket& sock, const Bytes& payload) {
  trace::Span span("serve.request");
  n_requests_.fetch_add(1, std::memory_order_relaxed);

  // Register with the drain accounting BEFORE checking the drain flag:
  // stop() flips the flag and then waits for active_requests_ to reach
  // zero under the same mutex, so a request either sees draining_ here
  // or is fully served (response written) before sockets shut down.
  bool draining = false;
  {
    std::lock_guard lock(drain_mu_);
    ++active_requests_;
    draining = draining_.load();
  }
  struct DrainGuard {
    Server* s;
    ~DrainGuard() {
      {
        std::lock_guard lock(s->drain_mu_);
        --s->active_requests_;
      }
      s->drain_cv_.notify_all();
    }
  } guard{this};

  if (draining) {
    n_rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    send_error(sock, ErrorCode::kShuttingDown, "daemon is draining");
    return;
  }

  VerifyRequest request;
  try {
    // Version first: a client from a different protocol generation gets
    // the precise error, not a layout-dependent parse failure.
    ByteReader peek(payload);
    if (peek.remaining() >= 4 && peek.u32() != kProtocolVersion) {
      send_error(sock, ErrorCode::kUnsupportedVersion,
                 "server speaks protocol version " + std::to_string(kProtocolVersion));
      return;
    }
    request = parse_verify_request(payload);
  } catch (const FormatError& e) {
    n_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    send_error(sock, ErrorCode::kMalformedFrame, e.what());
    return;
  }

  try {
    CESM_FAILPOINT("serve.request");
    bool coalesced = false;
    const std::shared_ptr<const core::VariableResult> result =
        compute_coalesced(request, &coalesced);
    const Bytes response =
        serialize_variable_result(filter_result(*result, request.variants));
    util::write_frame(sock, static_cast<std::uint8_t>(MessageType::kVerifyResponse),
                      response);
    n_responses_.fetch_add(1, std::memory_order_relaxed);
  } catch (const AdmissionReject&) {
    n_rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
    send_error(sock, ErrorCode::kQueueFull,
               "admission control: " + std::to_string(config_.max_inflight) +
                   " computations already in flight");
  } catch (const InvalidArgument& e) {
    send_error(sock, ErrorCode::kBadRequest, e.what());
  } catch (const IoError&) {
    throw;  // response write failed: connection-level, handled by caller
  } catch (const Error& e) {
    n_processing_failures_.fetch_add(1, std::memory_order_relaxed);
    send_error(sock, ErrorCode::kProcessingFailed, e.what());
  }
}

std::shared_ptr<const core::VariableResult> Server::compute_coalesced(
    const VerifyRequest& request, bool* coalesced) {
  const std::uint64_t key = coalescing_key(request);
  std::shared_ptr<Flight> flight;
  std::shared_ptr<std::promise<std::shared_ptr<const core::VariableResult>>> promise;
  {
    std::lock_guard lock(flight_mu_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      // Join the computation already in flight. No admission check: a
      // joiner adds no work, only a waiter.
      flight = it->second;
      *coalesced = true;
      n_coalesced_joins_.fetch_add(1, std::memory_order_relaxed);
    } else {
      if (flights_active_ >= config_.max_inflight) throw AdmissionReject{};
      promise = std::make_shared<
          std::promise<std::shared_ptr<const core::VariableResult>>>();
      flight = std::make_shared<Flight>();
      flight->future = promise->get_future().share();
      flights_.emplace(key, flight);
      ++flights_active_;
      n_flights_.fetch_add(1, std::memory_order_relaxed);
      *coalesced = false;
    }
  }

  if (promise != nullptr) {
    try {
      promise->set_value(compute_result(request));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
    {
      std::lock_guard lock(flight_mu_);
      flights_.erase(key);
      --flights_active_;
    }
  }
  return flight->future.get();  // rethrows the leader's failure for everyone
}

std::shared_ptr<const core::VariableResult> Server::compute_result(
    const VerifyRequest& request) {
  const std::shared_ptr<const climate::EnsembleGenerator> ensemble =
      generator_for(request.ensemble);
  // run_suite, not run_variable: the retry/quarantine policy
  // (variable_retry_limit, continue_on_variable_error) must behave
  // exactly as it does in-process, or responses would not be
  // bit-identical under injected faults.
  core::SuiteResults results =
      core::run_suite(*ensemble, request.config, {request.variable});
  CESM_REQUIRE(results.variables.size() == 1);
  return std::make_shared<const core::VariableResult>(std::move(results.variables[0]));
}

std::shared_ptr<const climate::EnsembleGenerator> Server::generator_for(
    const climate::EnsembleSpec& spec) {
  const std::uint64_t key = ensemble_spec_key(spec);
  std::lock_guard lock(gen_mu_);
  auto it = generators_.find(key);
  if (it != generators_.end()) return it->second;
  // Constructed under the lock: generator setup (Lorenz-96 climatology)
  // is expensive enough that two concurrent builders would waste more
  // than the serialization costs. One entry per distinct spec, kept for
  // the daemon's lifetime (a handful of specs in practice).
  auto generator = std::make_shared<const climate::EnsembleGenerator>(spec);
  generators_.emplace(key, generator);
  return generator;
}

void Server::send_error(const util::Socket& sock, ErrorCode code,
                        const std::string& message) {
  try {
    const Bytes payload = serialize_error(ErrorInfo{code, message});
    util::write_frame(sock, static_cast<std::uint8_t>(MessageType::kErrorResponse),
                      payload);
  } catch (const IoError&) {
    // The client is gone; the error had nowhere to go.
  }
}

std::map<std::string, std::uint64_t> Server::counters() const {
  return {
      {"serve.connections", n_connections_.load(std::memory_order_relaxed)},
      {"serve.requests", n_requests_.load(std::memory_order_relaxed)},
      {"serve.responses", n_responses_.load(std::memory_order_relaxed)},
      {"serve.flights", n_flights_.load(std::memory_order_relaxed)},
      {"serve.coalesced_joins", n_coalesced_joins_.load(std::memory_order_relaxed)},
      {"serve.rejected_queue_full",
       n_rejected_queue_full_.load(std::memory_order_relaxed)},
      {"serve.rejected_shutdown", n_rejected_shutdown_.load(std::memory_order_relaxed)},
      {"serve.protocol_errors", n_protocol_errors_.load(std::memory_order_relaxed)},
      {"serve.processing_failures",
       n_processing_failures_.load(std::memory_order_relaxed)},
      {"serve.pings", n_pings_.load(std::memory_order_relaxed)},
  };
}

}  // namespace cesm::serve
