#pragma once
// cesmd wire protocol: verification-as-a-service message layer.
//
// Z-checker frames compression assessment as a reusable service rather
// than a per-dataset script; cesmd is that service for this repo's §4
// methodology. A request names everything that determines a verification
// — the ensemble spec (grid + members + latent dynamics), one variable,
// the full SuiteConfig, and an optional variant filter — and the response
// is the VariableResult `run_suite` would produce in-process, serialized
// field-for-field with ByteWriter. Two properties are load-bearing:
//
//   * Bit-parity: serialize_variable_result() is the ONLY encoding of a
//     result, used by both the server and by clients checking a response
//     against a local run_suite. run_suite is bit-deterministic at any
//     thread count, so response bytes must equal the local serialization
//     exactly — the CI gate compares them with memcmp, not a tolerance.
//   * Coalescing key: requests that agree on everything except the
//     variant filter share one suite computation. coalescing_key()
//     hashes exactly that agreement set; the filter is applied at
//     response-serialization time.
//
// Messages travel in util/net.h frames. Each frame type's payload is
// versioned with kProtocolVersion; a reader rejects a version it does
// not know with a typed error rather than guessing at field layout.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "climate/ensemble.h"
#include "core/suite.h"
#include "util/bytes.h"

namespace cesm::serve {

inline constexpr std::uint32_t kProtocolVersion = 1;

/// Frame types (the u8 in the util/net.h frame header).
enum class MessageType : std::uint8_t {
  kPing = 1,
  kPong = 2,
  kVerifyRequest = 3,
  kVerifyResponse = 4,   ///< payload: serialize_variable_result bytes
  kErrorResponse = 5,    ///< payload: ErrorInfo
  kStatsRequest = 6,
  kStatsResponse = 7,    ///< payload: string->u64 counter map
};

/// Typed failure codes carried by kErrorResponse.
enum class ErrorCode : std::uint32_t {
  kMalformedFrame = 1,      ///< bad magic / truncated header / bad payload
  kOversizedFrame = 2,      ///< declared payload above the server limit
  kUnsupportedType = 3,     ///< unknown MessageType
  kUnsupportedVersion = 4,  ///< request from a different protocol version
  kBadRequest = 5,          ///< parsed, but semantically invalid
  kQueueFull = 6,           ///< admission control rejected the request
  kProcessingFailed = 7,    ///< run_suite threw (incl. injected faults)
  kShuttingDown = 8,        ///< daemon is draining
};

const char* error_code_name(ErrorCode code);

struct ErrorInfo {
  ErrorCode code = ErrorCode::kProcessingFailed;
  std::string message;
};

/// One verification request: everything run_suite needs, plus a variant
/// filter selecting which verdicts the response should carry (empty =
/// all nine paper variants).
struct VerifyRequest {
  climate::EnsembleSpec ensemble;
  std::string variable;
  core::SuiteConfig config;
  std::vector<std::string> variants;
};

// --- serialization (ByteWriter/Reader; parse throws FormatError) -----------

Bytes serialize_verify_request(const VerifyRequest& request);
VerifyRequest parse_verify_request(std::span<const std::uint8_t> payload);

/// Canonical byte encoding of one variable's verification outcome. The
/// server's kVerifyResponse payload is exactly these bytes; a client
/// verifying parity serializes its local run_suite result with the same
/// function and compares buffers.
Bytes serialize_variable_result(const core::VariableResult& result);
core::VariableResult parse_variable_result(std::span<const std::uint8_t> payload);

Bytes serialize_error(const ErrorInfo& error);
ErrorInfo parse_error(std::span<const std::uint8_t> payload);

Bytes serialize_counters(const std::map<std::string, std::uint64_t>& counters);
std::map<std::string, std::uint64_t> parse_counters(std::span<const std::uint8_t> payload);

// --- request semantics ------------------------------------------------------

/// Hash of the computation a request demands: ensemble spec + variable +
/// suite config, EXCLUDING the variant filter (a filter selects verdicts
/// out of the one shared computation, it does not change it). Concurrent
/// requests with equal keys are coalesced onto a single run_suite.
std::uint64_t coalescing_key(const VerifyRequest& request);

/// Restrict a result to the requested variants, preserving request
/// order. Unknown variant names throw InvalidArgument (-> kBadRequest).
/// An empty filter returns `result` unchanged.
core::VariableResult filter_result(const core::VariableResult& result,
                                   const std::vector<std::string>& variants);

}  // namespace cesm::serve
