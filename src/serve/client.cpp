#include "serve/client.h"

namespace cesm::serve {

Client Client::connect_unix(const std::string& path) {
  return Client(util::connect_unix(path));
}

Client Client::connect_tcp(const std::string& host, std::uint16_t port) {
  return Client(util::connect_tcp(host, port));
}

Bytes Client::round_trip(MessageType request_type, std::span<const std::uint8_t> payload,
                         MessageType expected) {
  util::write_frame(socket_, static_cast<std::uint8_t>(request_type), payload);
  std::optional<util::Frame> frame = util::read_frame(socket_);
  if (!frame.has_value()) {
    throw IoError("cesmd closed the connection before responding");
  }
  if (static_cast<MessageType>(frame->type) == MessageType::kErrorResponse) {
    throw RemoteError(parse_error(frame->payload));
  }
  if (static_cast<MessageType>(frame->type) != expected) {
    throw FormatError("unexpected response type " + std::to_string(frame->type));
  }
  return std::move(frame->payload);
}

void Client::ping() {
  round_trip(MessageType::kPing, {}, MessageType::kPong);
}

Bytes Client::verify_raw(const VerifyRequest& request) {
  const Bytes payload = serialize_verify_request(request);
  return round_trip(MessageType::kVerifyRequest, payload, MessageType::kVerifyResponse);
}

core::VariableResult Client::verify(const VerifyRequest& request) {
  const Bytes payload = verify_raw(request);
  return parse_variable_result(payload);
}

std::map<std::string, std::uint64_t> Client::stats() {
  const Bytes payload = round_trip(MessageType::kStatsRequest, {},
                                   MessageType::kStatsResponse);
  return parse_counters(payload);
}

}  // namespace cesm::serve
