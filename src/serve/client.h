#pragma once
// cesmd client library.
//
// Thin, synchronous wrapper over the wire protocol: one Client owns one
// connection and issues one request at a time (the daemon coalesces and
// parallelizes across clients, not within one). The load generator
// (bench/bench_serving.cpp) opens N clients from N threads; the CI
// parity gate uses verify_raw() to memcmp a response against the local
// serialization of run_suite — which is why raw bytes are first-class
// here and the parsed convenience form is a wrapper.
//
// A typed server error (kQueueFull, kShuttingDown, ...) surfaces as
// RemoteError carrying the wire code, so callers can distinguish
// back-pressure from failure; transport problems stay IoError.

#include <cstdint>
#include <map>
#include <string>

#include "serve/protocol.h"
#include "util/error.h"
#include "util/net.h"

namespace cesm::serve {

/// A typed error response from the daemon.
class RemoteError : public Error {
 public:
  explicit RemoteError(const ErrorInfo& info)
      : Error(std::string("cesmd error [") + error_code_name(info.code) +
              "]: " + info.message),
        info_(info) {}
  [[nodiscard]] ErrorCode code() const { return info_.code; }
  [[nodiscard]] const std::string& message() const { return info_.message; }

 private:
  ErrorInfo info_;
};

class Client {
 public:
  /// Connect over a unix-domain socket.
  static Client connect_unix(const std::string& path);
  /// Connect over loopback TCP.
  static Client connect_tcp(const std::string& host, std::uint16_t port);

  /// Round-trip a ping (liveness probe; also how the bench waits for an
  /// out-of-process daemon to come up).
  void ping();

  /// Issue one verification request and return the raw response payload
  /// — the bytes the CI gate compares against a local run_suite
  /// serialization. Throws RemoteError on a typed error response,
  /// IoError/FormatError on transport or framing trouble.
  Bytes verify_raw(const VerifyRequest& request);

  /// verify_raw + parse.
  core::VariableResult verify(const VerifyRequest& request);

  /// Fetch the daemon's service counters (serve.coalesced_joins et al).
  std::map<std::string, std::uint64_t> stats();

 private:
  explicit Client(util::Socket socket) : socket_(std::move(socket)) {}

  /// Send one frame, read one frame, unwrap error responses; returns the
  /// payload after checking the response type is `expected`.
  Bytes round_trip(MessageType request_type, std::span<const std::uint8_t> payload,
                   MessageType expected);

  util::Socket socket_;
};

}  // namespace cesm::serve
