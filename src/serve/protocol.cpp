#include "serve/protocol.h"

#include "util/cache.h"
#include "util/error.h"

namespace cesm::serve {

namespace {

void write_bool(ByteWriter& w, bool v) { w.u8(v ? 1 : 0); }

bool read_bool(ByteReader& r) {
  const std::uint8_t v = r.u8();
  if (v > 1) throw FormatError("boolean field out of range");
  return v != 0;
}

void check_version(ByteReader& r, const char* what) {
  const std::uint32_t version = r.u32();
  if (version != kProtocolVersion) {
    throw FormatError(std::string(what) + ": unsupported protocol version " +
                      std::to_string(version));
  }
}

/// Guard a declared element count against a hostile payload: the count
/// cannot exceed the bytes remaining even at one byte per element.
std::uint32_t read_count(ByteReader& r, const char* what) {
  const std::uint32_t n = r.u32();
  if (n > r.remaining()) {
    throw FormatError(std::string(what) + ": declared count " + std::to_string(n) +
                      " exceeds payload");
  }
  return n;
}

void require_exhausted(const ByteReader& r, const char* what) {
  if (!r.exhausted()) {
    throw FormatError(std::string(what) + ": " + std::to_string(r.remaining()) +
                      " trailing bytes");
  }
}

// --- field-group helpers (write/read pairs kept adjacent so a schema
// --- change is a two-line diff, not a hunt) --------------------------------

void write_ensemble_spec(ByteWriter& w, const climate::EnsembleSpec& spec) {
  w.u64(spec.grid.nlat);
  w.u64(spec.grid.nlon);
  w.u64(spec.grid.nlev);
  w.u64(spec.members);
  w.u64(spec.latent.k);
  w.f64(spec.latent.forcing);
  w.f64(spec.latent.dt);
  w.u64(spec.latent.spinup_steps);
  w.u64(spec.latent.average_steps);
  w.u64(spec.latent.seed);
}

climate::EnsembleSpec read_ensemble_spec(ByteReader& r) {
  climate::EnsembleSpec spec;
  spec.grid.nlat = r.u64();
  spec.grid.nlon = r.u64();
  spec.grid.nlev = r.u64();
  spec.members = r.u64();
  spec.latent.k = r.u64();
  spec.latent.forcing = r.f64();
  spec.latent.dt = r.f64();
  spec.latent.spinup_steps = r.u64();
  spec.latent.average_steps = r.u64();
  spec.latent.seed = r.u64();
  return spec;
}

void write_suite_config(ByteWriter& w, const core::SuiteConfig& cfg) {
  w.u64(cfg.test_member_count);
  w.u64(cfg.member_seed);
  write_bool(w, cfg.run_bias);
  w.f64(cfg.thresholds.pearson_min);
  w.f64(cfg.thresholds.rmsz_diff_max);
  w.f64(cfg.thresholds.enmax_ratio_max);
  w.f64(cfg.thresholds.bias_confidence);
  w.f64(cfg.thresholds.rmsz_range_slack);
  w.i32(cfg.grib_significant_digits);
  w.i32(cfg.grib_max_extra_digits);
  write_bool(w, cfg.lossless_fallback);
  w.u64(cfg.variable_retry_limit);
  write_bool(w, cfg.continue_on_variable_error);
}

core::SuiteConfig read_suite_config(ByteReader& r) {
  core::SuiteConfig cfg;
  cfg.test_member_count = r.u64();
  cfg.member_seed = r.u64();
  cfg.run_bias = read_bool(r);
  cfg.thresholds.pearson_min = r.f64();
  cfg.thresholds.rmsz_diff_max = r.f64();
  cfg.thresholds.enmax_ratio_max = r.f64();
  cfg.thresholds.bias_confidence = r.f64();
  cfg.thresholds.rmsz_range_slack = r.f64();
  cfg.grib_significant_digits = r.i32();
  cfg.grib_max_extra_digits = r.i32();
  cfg.lossless_fallback = read_bool(r);
  cfg.variable_retry_limit = r.u64();
  cfg.continue_on_variable_error = read_bool(r);
  return cfg;
}

void write_member_eval(ByteWriter& w, const core::MemberEvaluation& e) {
  w.u64(e.member);
  w.f64(e.cr);
  w.f64(e.metrics.e_max);
  w.f64(e.metrics.e_nmax);
  w.f64(e.metrics.rmse);
  w.f64(e.metrics.nrmse);
  w.f64(e.metrics.psnr);
  w.f64(e.metrics.pearson);
  w.u64(e.metrics.points);
  w.f64(e.rmsz_original);
  w.f64(e.rmsz_reconstructed);
  w.f64(e.rmsz_diff);
  write_bool(w, e.rmsz_in_distribution);
  w.f64(e.enmax_ratio);
  write_bool(w, e.rho_pass);
  write_bool(w, e.rmsz_pass);
  write_bool(w, e.enmax_pass);
}

core::MemberEvaluation read_member_eval(ByteReader& r) {
  core::MemberEvaluation e;
  e.member = r.u64();
  e.cr = r.f64();
  e.metrics.e_max = r.f64();
  e.metrics.e_nmax = r.f64();
  e.metrics.rmse = r.f64();
  e.metrics.nrmse = r.f64();
  e.metrics.psnr = r.f64();
  e.metrics.pearson = r.f64();
  e.metrics.points = r.u64();
  e.rmsz_original = r.f64();
  e.rmsz_reconstructed = r.f64();
  e.rmsz_diff = r.f64();
  e.rmsz_in_distribution = read_bool(r);
  e.enmax_ratio = r.f64();
  e.rho_pass = read_bool(r);
  e.rmsz_pass = read_bool(r);
  e.enmax_pass = read_bool(r);
  return e;
}

void write_bias(ByteWriter& w, const core::BiasResult& b) {
  w.f64(b.fit.slope);
  w.f64(b.fit.intercept);
  w.f64(b.fit.slope_se);
  w.f64(b.fit.intercept_se);
  w.f64(b.fit.residual_sd);
  w.f64(b.fit.r2);
  w.u64(b.fit.n);
  w.f64(b.rect.slope_lo);
  w.f64(b.rect.slope_hi);
  w.f64(b.rect.intercept_lo);
  w.f64(b.rect.intercept_hi);
  w.f64(b.slope_distance);
  write_bool(w, b.pass);
  write_bool(w, b.contains_ideal);
}

core::BiasResult read_bias(ByteReader& r) {
  core::BiasResult b;
  b.fit.slope = r.f64();
  b.fit.intercept = r.f64();
  b.fit.slope_se = r.f64();
  b.fit.intercept_se = r.f64();
  b.fit.residual_sd = r.f64();
  b.fit.r2 = r.f64();
  b.fit.n = r.u64();
  b.rect.slope_lo = r.f64();
  b.rect.slope_hi = r.f64();
  b.rect.intercept_lo = r.f64();
  b.rect.intercept_hi = r.f64();
  b.slope_distance = r.f64();
  b.pass = read_bool(r);
  b.contains_ideal = read_bool(r);
  return b;
}

void write_verdict(ByteWriter& w, const core::VariableVerdict& v) {
  w.str(v.variable);
  w.str(v.codec);
  w.u32(static_cast<std::uint32_t>(v.members.size()));
  for (const core::MemberEvaluation& e : v.members) write_member_eval(w, e);
  write_bias(w, v.bias);
  write_bool(w, v.bias_evaluated);
  w.f64(v.mean_cr);
  write_bool(w, v.rho_pass);
  write_bool(w, v.rmsz_pass);
  write_bool(w, v.enmax_pass);
  write_bool(w, v.bias_pass);
  write_bool(w, v.codec_error);
  w.str(v.error_message);
  w.str(v.fallback_codec);
}

core::VariableVerdict read_verdict(ByteReader& r) {
  core::VariableVerdict v;
  v.variable = r.str();
  v.codec = r.str();
  const std::uint32_t members = read_count(r, "verdict members");
  v.members.reserve(members);
  for (std::uint32_t i = 0; i < members; ++i) v.members.push_back(read_member_eval(r));
  v.bias = read_bias(r);
  v.bias_evaluated = read_bool(r);
  v.mean_cr = r.f64();
  v.rho_pass = read_bool(r);
  v.rmsz_pass = read_bool(r);
  v.enmax_pass = read_bool(r);
  v.bias_pass = read_bool(r);
  v.codec_error = read_bool(r);
  v.error_message = r.str();
  v.fallback_codec = r.str();
  return v;
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformedFrame: return "malformed-frame";
    case ErrorCode::kOversizedFrame: return "oversized-frame";
    case ErrorCode::kUnsupportedType: return "unsupported-type";
    case ErrorCode::kUnsupportedVersion: return "unsupported-version";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kQueueFull: return "queue-full";
    case ErrorCode::kProcessingFailed: return "processing-failed";
    case ErrorCode::kShuttingDown: return "shutting-down";
  }
  return "unknown";
}

Bytes serialize_verify_request(const VerifyRequest& request) {
  Bytes out;
  ByteWriter w(out);
  w.u32(kProtocolVersion);
  write_ensemble_spec(w, request.ensemble);
  w.str(request.variable);
  write_suite_config(w, request.config);
  w.u32(static_cast<std::uint32_t>(request.variants.size()));
  for (const std::string& v : request.variants) w.str(v);
  return out;
}

VerifyRequest parse_verify_request(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  check_version(r, "verify request");
  VerifyRequest request;
  request.ensemble = read_ensemble_spec(r);
  request.variable = r.str();
  request.config = read_suite_config(r);
  const std::uint32_t variants = read_count(r, "request variants");
  request.variants.reserve(variants);
  for (std::uint32_t i = 0; i < variants; ++i) request.variants.push_back(r.str());
  require_exhausted(r, "verify request");
  return request;
}

Bytes serialize_variable_result(const core::VariableResult& result) {
  Bytes out;
  ByteWriter w(out);
  w.u32(kProtocolVersion);
  w.str(result.variable);
  write_bool(w, result.is_3d);
  write_bool(w, result.fill.has_value());
  w.f32(result.fill.value_or(0.0f));
  w.f64(result.character.summary.min);
  w.f64(result.character.summary.max);
  w.f64(result.character.summary.mean);
  w.f64(result.character.summary.stddev);
  w.u64(result.character.summary.count);
  w.f64(result.character.lossless_cr);
  w.i32(result.grib_decimal_scale);
  write_bool(w, result.grib_tuning_passed);
  w.u32(static_cast<std::uint32_t>(result.verdicts.size()));
  for (const core::VariableVerdict& v : result.verdicts) write_verdict(w, v);
  w.f64(result.netcdf4_cr);
  w.f64(result.fpzip32_cr);
  w.u32(static_cast<std::uint32_t>(result.test_members.size()));
  for (std::size_t m : result.test_members) w.u64(m);
  write_bool(w, result.processing_failed);
  w.str(result.error_message);
  return out;
}

core::VariableResult parse_variable_result(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  check_version(r, "variable result");
  core::VariableResult result;
  result.variable = r.str();
  result.is_3d = read_bool(r);
  const bool has_fill = read_bool(r);
  const float fill = r.f32();
  if (has_fill) result.fill = fill;
  result.character.summary.min = r.f64();
  result.character.summary.max = r.f64();
  result.character.summary.mean = r.f64();
  result.character.summary.stddev = r.f64();
  result.character.summary.count = r.u64();
  result.character.lossless_cr = r.f64();
  result.grib_decimal_scale = r.i32();
  result.grib_tuning_passed = read_bool(r);
  const std::uint32_t verdicts = read_count(r, "result verdicts");
  result.verdicts.reserve(verdicts);
  for (std::uint32_t i = 0; i < verdicts; ++i) result.verdicts.push_back(read_verdict(r));
  result.netcdf4_cr = r.f64();
  result.fpzip32_cr = r.f64();
  const std::uint32_t members = read_count(r, "result test members");
  result.test_members.reserve(members);
  for (std::uint32_t i = 0; i < members; ++i) result.test_members.push_back(r.u64());
  result.processing_failed = read_bool(r);
  result.error_message = r.str();
  require_exhausted(r, "variable result");
  return result;
}

Bytes serialize_error(const ErrorInfo& error) {
  Bytes out;
  ByteWriter w(out);
  w.u32(kProtocolVersion);
  w.u32(static_cast<std::uint32_t>(error.code));
  w.str(error.message);
  return out;
}

ErrorInfo parse_error(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  check_version(r, "error response");
  ErrorInfo error;
  const std::uint32_t code = r.u32();
  if (code < static_cast<std::uint32_t>(ErrorCode::kMalformedFrame) ||
      code > static_cast<std::uint32_t>(ErrorCode::kShuttingDown)) {
    throw FormatError("error response: unknown code " + std::to_string(code));
  }
  error.code = static_cast<ErrorCode>(code);
  error.message = r.str();
  require_exhausted(r, "error response");
  return error;
}

Bytes serialize_counters(const std::map<std::string, std::uint64_t>& counters) {
  Bytes out;
  ByteWriter w(out);
  w.u32(kProtocolVersion);
  w.u32(static_cast<std::uint32_t>(counters.size()));
  for (const auto& [name, value] : counters) {
    w.str(name);
    w.u64(value);
  }
  return out;
}

std::map<std::string, std::uint64_t> parse_counters(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  check_version(r, "stats response");
  std::map<std::string, std::uint64_t> counters;
  const std::uint32_t n = read_count(r, "stats counters");
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = r.str();
    counters[std::move(name)] = r.u64();
  }
  require_exhausted(r, "stats response");
  return counters;
}

std::uint64_t coalescing_key(const VerifyRequest& request) {
  util::KeyHasher h;
  h.str("cesmd.verify.v1");
  h.u64(request.ensemble.grid.nlat)
      .u64(request.ensemble.grid.nlon)
      .u64(request.ensemble.grid.nlev)
      .u64(request.ensemble.members)
      .u64(request.ensemble.latent.k)
      .f64(request.ensemble.latent.forcing)
      .f64(request.ensemble.latent.dt)
      .u64(request.ensemble.latent.spinup_steps)
      .u64(request.ensemble.latent.average_steps)
      .u64(request.ensemble.latent.seed);
  h.str(request.variable);
  h.u64(request.config.test_member_count)
      .u64(request.config.member_seed)
      .boolean(request.config.run_bias)
      .f64(request.config.thresholds.pearson_min)
      .f64(request.config.thresholds.rmsz_diff_max)
      .f64(request.config.thresholds.enmax_ratio_max)
      .f64(request.config.thresholds.bias_confidence)
      .f64(request.config.thresholds.rmsz_range_slack)
      .i64(request.config.grib_significant_digits)
      .i64(request.config.grib_max_extra_digits)
      .boolean(request.config.lossless_fallback)
      .u64(request.config.variable_retry_limit)
      .boolean(request.config.continue_on_variable_error);
  // request.variants deliberately not hashed: the filter selects verdicts
  // out of the shared computation at response time.
  return h.digest();
}

core::VariableResult filter_result(const core::VariableResult& result,
                                   const std::vector<std::string>& variants) {
  if (variants.empty()) return result;
  core::VariableResult filtered = result;
  filtered.verdicts.clear();
  for (const std::string& name : variants) {
    bool found = false;
    for (const core::VariableVerdict& v : result.verdicts) {
      if (v.codec == name) {
        filtered.verdicts.push_back(v);
        found = true;
        break;
      }
    }
    if (!found) {
      throw InvalidArgument("unknown variant in request filter: " + name);
    }
  }
  return filtered;
}

}  // namespace cesm::serve
