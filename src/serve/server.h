#pragma once
// cesmd server core: verification-as-a-service on top of run_suite.
//
// One Server owns a listening socket (unix-domain or loopback TCP) and a
// thread per accepted connection. Verification requests are executed ON
// the connection thread by calling core::run_suite — connection threads
// are external threads to the work-stealing scheduler, so the suite's
// parallel_for submits through the injection queue and the thread help-
// joins: every concurrent request multiplexes onto the ONE process-wide
// worker pool instead of oversubscribing the machine with private pools.
//
// Three service disciplines sit between the socket and run_suite:
//
//   * Admission control — at most `max_inflight` distinct computations
//     run concurrently; a request that would start one more is rejected
//     immediately with a typed kQueueFull error (bounded work, never an
//     unbounded queue a client cannot reason about).
//   * Single-flight coalescing — concurrent requests whose
//     coalescing_key() matches join the computation already in flight
//     and all receive its result; EnsembleCache::global() additionally
//     memoizes the ensemble products ACROSS flights (the multi-tenant
//     tier), but only single-flight prevents concurrent duplicate
//     builds, which the cache explicitly permits. Coalesced joiners
//     bypass admission control: they add no work.
//   * Graceful drain — stop() (wired to SIGINT/SIGTERM in cesmd) stops
//     accepting, lets every in-flight request finish and write its
//     response, answers anything newly read with kShuttingDown, then
//     closes. No response is ever truncated by shutdown.
//
// Responses are bit-identical to an in-process run_suite of the same
// request: the payload is serialize_variable_result() of the (filtered)
// VariableResult, and run_suite is bit-deterministic at any thread
// count. tests/serve/test_server.cpp and the bench_serving CI gate
// compare the bytes with memcmp.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "climate/ensemble.h"
#include "core/suite.h"
#include "serve/protocol.h"
#include "util/net.h"

namespace cesm::serve {

struct ServerConfig {
  /// Non-empty: listen on this unix-domain socket path. Empty: TCP.
  std::string unix_path;
  /// Loopback TCP port when unix_path is empty (0 = ephemeral; the bound
  /// port is readable via Server::port()).
  std::uint16_t tcp_port = 0;
  /// Admission bound: distinct computations allowed in flight at once.
  /// 0 rejects every request (used by the deterministic queue-full test).
  std::size_t max_inflight = 8;
  /// Per-frame payload ceiling enforced before any allocation.
  std::uint32_t max_frame_bytes = util::kMaxFramePayload;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket and start the accept loop. Throws IoError on bind
  /// failure. Call once.
  void start();

  /// Graceful drain (see file comment). Idempotent; blocks until every
  /// connection thread has exited.
  void stop();

  /// Bound TCP port (valid after start() when configured for TCP).
  [[nodiscard]] std::uint16_t port() const { return bound_port_; }
  [[nodiscard]] const ServerConfig& config() const { return config_; }

  /// Service counters (serve.requests, serve.coalesced_joins,
  /// serve.flights, serve.rejected_queue_full, ...). Also the payload of
  /// the kStatsRequest protocol message, which is how an out-of-process
  /// load generator observes coalescing.
  [[nodiscard]] std::map<std::string, std::uint64_t> counters() const;

 private:
  struct Connection {
    util::Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};  ///< set by the thread; reaped by accept_loop
  };

  /// One in-flight computation; coalesced joiners wait on the future.
  struct Flight {
    std::shared_future<std::shared_ptr<const core::VariableResult>> future;
  };

  void accept_loop();
  /// Join and drop finished connections (keeps a long-lived daemon from
  /// accumulating dead threads). Called from the accept loop.
  void reap_connections();
  void serve_connection(Connection* conn);
  /// Handle one verify request end-to-end; always writes exactly one
  /// response frame (result or typed error).
  void handle_verify(const util::Socket& socket, const Bytes& payload);
  /// Single-flight wrapper around compute_result.
  std::shared_ptr<const core::VariableResult> compute_coalesced(
      const VerifyRequest& request, bool* coalesced);
  std::shared_ptr<const core::VariableResult> compute_result(
      const VerifyRequest& request);
  std::shared_ptr<const climate::EnsembleGenerator> generator_for(
      const climate::EnsembleSpec& spec);
  void send_error(const util::Socket& socket, ErrorCode code,
                  const std::string& message);

  ServerConfig config_;
  util::Socket listener_;
  std::uint16_t bound_port_ = 0;
  int wake_pipe_[2] = {-1, -1};  ///< wakes the accept loop's poll on stop()
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};

  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::mutex flight_mu_;
  std::map<std::uint64_t, std::shared_ptr<Flight>> flights_;
  std::size_t flights_active_ = 0;

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::size_t active_requests_ = 0;

  std::mutex gen_mu_;
  std::map<std::uint64_t, std::shared_ptr<const climate::EnsembleGenerator>> generators_;

  // Counters (relaxed; exact under the quiesced reads tests/bench do).
  std::atomic<std::uint64_t> n_connections_{0};
  std::atomic<std::uint64_t> n_requests_{0};
  std::atomic<std::uint64_t> n_responses_{0};
  std::atomic<std::uint64_t> n_flights_{0};
  std::atomic<std::uint64_t> n_coalesced_joins_{0};
  std::atomic<std::uint64_t> n_rejected_queue_full_{0};
  std::atomic<std::uint64_t> n_rejected_shutdown_{0};
  std::atomic<std::uint64_t> n_protocol_errors_{0};
  std::atomic<std::uint64_t> n_processing_failures_{0};
  std::atomic<std::uint64_t> n_pings_{0};
};

}  // namespace cesm::serve
