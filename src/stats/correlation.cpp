#include "stats/correlation.h"

#include <cmath>

#include "util/error.h"

namespace cesm::stats {

namespace {

struct Moments {
  double mean_x = 0.0, mean_y = 0.0;
  double sxx = 0.0, syy = 0.0, sxy = 0.0;
  std::size_t n = 0;
};

template <typename T>
Moments moments(std::span<const T> x, std::span<const T> y,
                std::span<const std::uint8_t> mask) {
  CESM_REQUIRE(x.size() == y.size());
  CESM_REQUIRE(mask.empty() || mask.size() == x.size());
  Moments m;
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!mask.empty() && !mask[i]) continue;
    sx += static_cast<double>(x[i]);
    sy += static_cast<double>(y[i]);
    ++m.n;
  }
  if (m.n == 0) return m;
  m.mean_x = sx / static_cast<double>(m.n);
  m.mean_y = sy / static_cast<double>(m.n);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!mask.empty() && !mask[i]) continue;
    const double dx = static_cast<double>(x[i]) - m.mean_x;
    const double dy = static_cast<double>(y[i]) - m.mean_y;
    m.sxx += dx * dx;
    m.syy += dy * dy;
    m.sxy += dx * dy;
  }
  return m;
}

template <typename T>
double pearson_impl(std::span<const T> x, std::span<const T> y,
                    std::span<const std::uint8_t> mask) {
  const Moments m = moments(x, y, mask);
  if (m.n == 0) return 0.0;
  if (m.sxx == 0.0 || m.syy == 0.0) {
    // Constant series: correlation is undefined; report 1 only for an
    // exact pointwise match (both constant and equal means).
    return (m.sxx == 0.0 && m.syy == 0.0 && m.mean_x == m.mean_y) ? 1.0 : 0.0;
  }
  return m.sxy / std::sqrt(m.sxx * m.syy);
}

}  // namespace

double covariance(std::span<const float> x, std::span<const float> y,
                  std::span<const std::uint8_t> mask) {
  const Moments m = moments(x, y, mask);
  return m.n ? m.sxy / static_cast<double>(m.n) : 0.0;
}

double pearson(std::span<const float> x, std::span<const float> y,
               std::span<const std::uint8_t> mask) {
  return pearson_impl(x, y, mask);
}

double pearson(std::span<const double> x, std::span<const double> y) {
  return pearson_impl(x, y, {});
}

}  // namespace cesm::stats
