#include "stats/correlation.h"

#include <algorithm>
#include <cmath>

#include "stats/kernels.h"
#include "util/error.h"

namespace cesm::stats {

namespace {

/// A series whose centered spread is below the float32 representation
/// noise of its own mean is effectively constant: spread beyond this is
/// indistinguishable from quantization of the stored values. Mirrors the
/// degenerate-spread floor used by the RMSZ machinery (core/rmsz.cpp).
constexpr double kConstantSpreadRelTol = 3e-7;

/// Two effectively-constant series count as pointwise equal when their
/// means agree to this relative tolerance. A pure constant bias this small
/// cannot meaningfully fail the paper's 1 - 1e-5 correlation bar, and a
/// lossy round trip of a constant field always lands within float
/// quantization of the original — exact `==` on the means (the seed
/// behaviour) reported rho = 0 for such fields and spuriously failed them.
constexpr double kConstantMeanRelTol = 1e-5;

template <typename T>
double pearson_impl(std::span<const T> x, std::span<const T> y,
                    std::span<const std::uint8_t> mask) {
  return pearson_from_accum(kernels::comoments(x, y, mask));
}

}  // namespace

double pearson_from_accum(const kernels::CoMomentAccum& m) {
  if (m.count == 0) return 0.0;
  const double n = static_cast<double>(m.count);
  const double floor_x = kConstantSpreadRelTol * std::fabs(m.mean_x);
  const double floor_y = kConstantSpreadRelTol * std::fabs(m.mean_y);
  const bool const_x = m.sxx <= n * floor_x * floor_x;
  const bool const_y = m.syy <= n * floor_y * floor_y;
  if (const_x || const_y) {
    // Correlation is undefined for a constant series; report 1 only when
    // both are constant at (tolerantly) the same level.
    if (const_x != const_y) return 0.0;
    const double scale = std::max(std::fabs(m.mean_x), std::fabs(m.mean_y));
    return std::fabs(m.mean_x - m.mean_y) <= kConstantMeanRelTol * scale ? 1.0 : 0.0;
  }
  return m.sxy / std::sqrt(m.sxx * m.syy);
}

double covariance(std::span<const float> x, std::span<const float> y,
                  std::span<const std::uint8_t> mask) {
  const kernels::CoMomentAccum m = kernels::comoments(x, y, mask);
  return m.count ? m.sxy / static_cast<double>(m.count) : 0.0;
}

double pearson(std::span<const float> x, std::span<const float> y,
               std::span<const std::uint8_t> mask) {
  return pearson_impl(x, y, mask);
}

double pearson(std::span<const double> x, std::span<const double> y) {
  return pearson_impl(x, y, {});
}

}  // namespace cesm::stats
