#pragma once
// Descriptive statistics over (possibly fill-valued) float datasets.
//
// Paper §4.1 characterizes every variable by min, max, mean and standard
// deviation, explicitly excluding special values such as the 1e35 ocean
// fill (§4.3, last paragraph). All routines here therefore accept an
// optional validity mask.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "stats/kernels.h"

namespace cesm::stats {

/// Moment/extreme summary of a dataset (fill values excluded).
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;   ///< population standard deviation
  std::size_t count = 0; ///< number of valid (non-fill) points

  /// Range R_X = x_max - x_min (paper §4).
  [[nodiscard]] double range() const { return max - min; }
};

/// Five-number box-plot summary (paper Figures 1 and 3 render these).
struct BoxSummary {
  double lo = 0.0;      ///< whisker bottom: distribution minimum
  double q1 = 0.0;      ///< lower quartile
  double median = 0.0;
  double q3 = 0.0;      ///< upper quartile
  double hi = 0.0;      ///< whisker top: distribution maximum
  std::size_t count = 0;
};

/// Summarize `data`; entries where mask[i] == 0 are ignored. An empty mask
/// means every point is valid. Returns count == 0 summary for empty input.
Summary summarize(std::span<const float> data, std::span<const std::uint8_t> mask = {});
Summary summarize(std::span<const double> data, std::span<const std::uint8_t> mask = {});

/// The exact finalization summarize() applies to a fused moment
/// accumulation — shared with the streaming path, which accumulates
/// chunk-by-chunk (stats::MomentStream) instead of in one pass.
Summary summary_from(const kernels::MomentAccum& a);

/// Linear-interpolated quantile (q in [0,1]) of a *sorted* sequence.
double quantile_sorted(std::span<const double> sorted, double q);

/// Box-plot summary of an arbitrary sequence (copies and sorts internally).
BoxSummary box_summary(std::span<const double> data);

/// Area/equal-weight global mean with optional mask.
double mean(std::span<const float> data, std::span<const std::uint8_t> mask = {});

/// Weighted mean: sum(w_i x_i)/sum(w_i) over valid points. Weights span must
/// match data length.
double weighted_mean(std::span<const float> data, std::span<const double> weights,
                     std::span<const std::uint8_t> mask = {});

}  // namespace cesm::stats
