#include "stats/kernels.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "util/error.h"

namespace cesm::stats::kernels {

namespace {

/// Independent accumulator lanes per inner loop: wide enough for one AVX2
/// double vector, few enough that every kernel's lanes stay in registers.
constexpr std::size_t kLanes = 4;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Neumaier-compensated running sum: block partial sums are combined with
/// a carried correction term, so the global total is accurate to ~1 ulp
/// regardless of how many blocks a large field spans.
struct CompensatedSum {
  double sum = 0.0;
  double comp = 0.0;

  void add(double v) {
    const double t = sum + v;
    if (std::fabs(sum) >= std::fabs(v)) {
      comp += (sum - t) + v;
    } else {
      comp += (v - t) + sum;
    }
    sum = t;
  }

  [[nodiscard]] double value() const { return sum + comp; }
};

/// Lane-parallel (sum, min, max) over a dense block.
template <typename T>
void block_minmax_sum(const T* x, std::size_t n, double& min_out, double& max_out,
                      double& sum_out) {
  double s[kLanes] = {0.0, 0.0, 0.0, 0.0};
  double lo[kLanes] = {kInf, kInf, kInf, kInf};
  double hi[kLanes] = {-kInf, -kInf, -kInf, -kInf};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t k = 0; k < kLanes; ++k) {
      const double v = static_cast<double>(x[i + k]);
      s[k] += v;
      lo[k] = v < lo[k] ? v : lo[k];
      hi[k] = v > hi[k] ? v : hi[k];
    }
  }
  for (; i < n; ++i) {
    const double v = static_cast<double>(x[i]);
    s[0] += v;
    lo[0] = v < lo[0] ? v : lo[0];
    hi[0] = v > hi[0] ? v : hi[0];
  }
  sum_out = (s[0] + s[1]) + (s[2] + s[3]);
  min_out = std::min(std::min(lo[0], lo[1]), std::min(lo[2], lo[3]));
  max_out = std::max(std::max(hi[0], hi[1]), std::max(hi[2], hi[3]));
}

/// Lane-parallel Σ(x - mean)² over a dense block. The block is L1-resident
/// from the first pass, so this does not re-read DRAM.
template <typename T>
double block_m2(const T* x, std::size_t n, double mean) {
  double s[kLanes] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t k = 0; k < kLanes; ++k) {
      const double d = static_cast<double>(x[i + k]) - mean;
      s[k] += d * d;
    }
  }
  for (; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - mean;
    s[0] += d * d;
  }
  return (s[0] + s[1]) + (s[2] + s[3]);
}

/// One ≤kBlock block of the moments kernel: computes the block accumulator
/// and merges it into `acc`. `mk == nullptr` means no mask. Shared verbatim
/// by the one-shot kernel and MomentStream so both produce identical bits.
template <typename T>
void moment_block(const T* x, const std::uint8_t* mk, std::size_t len,
                  MomentAccum& acc) {
  MomentAccum blk;
  {
    if (mk == nullptr || all_valid({mk, len})) {
      double lo = 0.0, hi = 0.0, sum = 0.0;
      block_minmax_sum(x, len, lo, hi, sum);
      blk.count = len;
      blk.mean = sum / static_cast<double>(len);
      blk.m2 = block_m2(x, len, blk.mean);
      blk.min = lo;
      blk.max = hi;
    } else {
      double lo = kInf, hi = -kInf, sum = 0.0;
      std::size_t cnt = 0;
      for (std::size_t i = 0; i < len; ++i) {
        if (!mk[i]) continue;
        const double v = static_cast<double>(x[i]);
        sum += v;
        lo = v < lo ? v : lo;
        hi = v > hi ? v : hi;
        ++cnt;
      }
      if (cnt == 0) return;
      blk.count = cnt;
      blk.mean = sum / static_cast<double>(cnt);
      blk.min = lo;
      blk.max = hi;
      double m2 = 0.0;
      for (std::size_t i = 0; i < len; ++i) {
        if (!mk[i]) continue;
        const double d = static_cast<double>(x[i]) - blk.mean;
        m2 += d * d;
      }
      blk.m2 = m2;
    }
    acc.merge(blk);
  }
}

template <typename T>
MomentAccum moments_impl(std::span<const T> data, std::span<const std::uint8_t> mask) {
  CESM_REQUIRE(mask.empty() || mask.size() == data.size());
  MomentAccum acc;
  const std::size_t n = data.size();
  for (std::size_t b = 0; b < n; b += kBlock) {
    const std::size_t len = std::min(kBlock, n - b);
    moment_block(data.data() + b, mask.empty() ? nullptr : mask.data() + b, len, acc);
  }
  return acc;
}

/// One ≤kBlock block of the co-moments kernel (see moment_block).
template <typename T>
void comoment_block(const T* xp, const T* yp, const std::uint8_t* mk, std::size_t len,
                    CoMomentAccum& acc) {
  CoMomentAccum blk;
  {
    if (mk == nullptr || all_valid({mk, len})) {
      // One pass, pivoted on the block's first element: accumulate
      // deviations from (px, py), then correct at block end with
      //   sxx = sum(dx^2) - sum(dx)^2 / len.
      // Within a 4096-element block the pivot sits inside the data
      // range, so the correction cancels at most a few bits; block
      // sums then combine via Chan's merge. This reads each input
      // exactly once where the two-pass form reads it twice, and the
      // correction can round a hair negative for near-constant blocks,
      // hence the clamp (sxx, syy are sums of squares).
      const double px = static_cast<double>(xp[0]);
      const double py = static_cast<double>(yp[0]);
      double sdx[kLanes] = {0.0, 0.0, 0.0, 0.0};
      double sdy[kLanes] = {0.0, 0.0, 0.0, 0.0};
      double cxx[kLanes] = {0.0, 0.0, 0.0, 0.0};
      double cyy[kLanes] = {0.0, 0.0, 0.0, 0.0};
      double cxy[kLanes] = {0.0, 0.0, 0.0, 0.0};
      std::size_t i = 0;
      for (; i + kLanes <= len; i += kLanes) {
        for (std::size_t k = 0; k < kLanes; ++k) {
          const double dx = static_cast<double>(xp[i + k]) - px;
          const double dy = static_cast<double>(yp[i + k]) - py;
          sdx[k] += dx;
          sdy[k] += dy;
          cxx[k] += dx * dx;
          cyy[k] += dy * dy;
          cxy[k] += dx * dy;
        }
      }
      for (; i < len; ++i) {
        const double dx = static_cast<double>(xp[i]) - px;
        const double dy = static_cast<double>(yp[i]) - py;
        sdx[0] += dx;
        sdy[0] += dy;
        cxx[0] += dx * dx;
        cyy[0] += dy * dy;
        cxy[0] += dx * dy;
      }
      const double sx = (sdx[0] + sdx[1]) + (sdx[2] + sdx[3]);
      const double sy = (sdy[0] + sdy[1]) + (sdy[2] + sdy[3]);
      const double d = static_cast<double>(len);
      blk.count = len;
      blk.mean_x = px + sx / d;
      blk.mean_y = py + sy / d;
      blk.sxx = std::max(0.0, ((cxx[0] + cxx[1]) + (cxx[2] + cxx[3])) - sx * sx / d);
      blk.syy = std::max(0.0, ((cyy[0] + cyy[1]) + (cyy[2] + cyy[3])) - sy * sy / d);
      blk.sxy = ((cxy[0] + cxy[1]) + (cxy[2] + cxy[3])) - sx * sy / d;
    } else {
      // Masked slow path: same pivoted single pass, pivoted on the
      // block's first valid element.
      std::size_t first = 0;
      while (first < len && !mk[first]) ++first;
      if (first == len) return;
      const double px = static_cast<double>(xp[first]);
      const double py = static_cast<double>(yp[first]);
      double sx = 0.0, sy = 0.0, cxx = 0.0, cyy = 0.0, cxy = 0.0;
      std::size_t cnt = 0;
      for (std::size_t i = first; i < len; ++i) {
        if (!mk[i]) continue;
        const double dx = static_cast<double>(xp[i]) - px;
        const double dy = static_cast<double>(yp[i]) - py;
        sx += dx;
        sy += dy;
        cxx += dx * dx;
        cyy += dy * dy;
        cxy += dx * dy;
        ++cnt;
      }
      const double d = static_cast<double>(cnt);
      blk.count = cnt;
      blk.mean_x = px + sx / d;
      blk.mean_y = py + sy / d;
      blk.sxx = std::max(0.0, cxx - sx * sx / d);
      blk.syy = std::max(0.0, cyy - sy * sy / d);
      blk.sxy = cxy - sx * sy / d;
    }
    acc.merge(blk);
  }
}

template <typename T>
CoMomentAccum comoments_impl(std::span<const T> x, std::span<const T> y,
                             std::span<const std::uint8_t> mask) {
  CESM_REQUIRE(x.size() == y.size());
  CESM_REQUIRE(mask.empty() || mask.size() == x.size());
  CoMomentAccum acc;
  const std::size_t n = x.size();
  for (std::size_t b = 0; b < n; b += kBlock) {
    const std::size_t len = std::min(kBlock, n - b);
    comoment_block(x.data() + b, y.data() + b,
                   mask.empty() ? nullptr : mask.data() + b, len, acc);
  }
  return acc;
}

/// One ≤kBlock block of the error-norm kernel. The compensated total is
/// carried across blocks by the caller (one-shot loop or ErrorNormStream).
void error_block(const float* xp, const float* yp, const std::uint8_t* mk,
                 std::size_t len, ErrorAccum& acc, CompensatedSum& total) {
  if (mk == nullptr || all_valid({mk, len})) {
    double s[kLanes] = {0.0, 0.0, 0.0, 0.0};
    double mx[kLanes] = {0.0, 0.0, 0.0, 0.0};
    std::size_t i = 0;
    for (; i + kLanes <= len; i += kLanes) {
      for (std::size_t k = 0; k < kLanes; ++k) {
        const double e = static_cast<double>(xp[i + k]) - static_cast<double>(yp[i + k]);
        const double a = std::fabs(e);
        s[k] += e * e;
        mx[k] = a > mx[k] ? a : mx[k];
      }
    }
    for (; i < len; ++i) {
      const double e = static_cast<double>(xp[i]) - static_cast<double>(yp[i]);
      const double a = std::fabs(e);
      s[0] += e * e;
      mx[0] = a > mx[0] ? a : mx[0];
    }
    total.add((s[0] + s[1]) + (s[2] + s[3]));
    const double blk_max = std::max(std::max(mx[0], mx[1]), std::max(mx[2], mx[3]));
    acc.max_abs = blk_max > acc.max_abs ? blk_max : acc.max_abs;
    acc.count += len;
  } else {
    double s = 0.0;
    for (std::size_t i = 0; i < len; ++i) {
      if (!mk[i]) continue;
      const double e = static_cast<double>(xp[i]) - static_cast<double>(yp[i]);
      const double a = std::fabs(e);
      s += e * e;
      acc.max_abs = a > acc.max_abs ? a : acc.max_abs;
      ++acc.count;
    }
    total.add(s);
  }
}

/// One ≤kBlock block of the z-score kernel. `inv` is 1/(member_count-1),
/// hoisted by the caller exactly as the one-shot kernel hoists it. The
/// masked path adds per point straight into `acc` — that ordering is part
/// of the kernel's floating-point identity, which is why the stream must
/// reuse this block routine rather than merging per-chunk sub-results.
void zscore_block(const float* dp, const float* op, const double* sp, const double* qp,
                  const std::uint8_t* mk, std::size_t len, double inv, double floor_rel,
                  ZScoreAccum& acc) {
  if (mk == nullptr || all_valid({mk, len})) {
    // Branchless select form: degenerate-spread points contribute 0 and a
    // clamped denominator keeps the divide finite. The accumulated
    // quantity is z² = (x-μ)²/σ², so no sqrt is needed at all — the
    // legacy loop's sqrt-then-square is one divide plus one sqrt per
    // point of pure overhead.
    double z2[kLanes] = {0.0, 0.0, 0.0, 0.0};
    std::size_t used[kLanes] = {0, 0, 0, 0};
    std::size_t i = 0;
    for (; i + kLanes <= len; i += kLanes) {
      for (std::size_t k = 0; k < kLanes; ++k) {
        const double xm = static_cast<double>(op[i + k]);
        const double mu = (sp[i + k] - xm) * inv;
        const double raw = (qp[i + k] - xm * xm) * inv - mu * mu;
        const double var = raw > 0.0 ? raw : 0.0;
        const double floor_sd = floor_rel * std::fabs(mu);
        const bool use = var > floor_sd * floor_sd;
        const double num = static_cast<double>(dp[i + k]) - mu;
        z2[k] += use ? num * num / var : 0.0;
        used[k] += use ? 1 : 0;
      }
    }
    for (; i < len; ++i) {
      const double xm = static_cast<double>(op[i]);
      const double mu = (sp[i] - xm) * inv;
      const double raw = (qp[i] - xm * xm) * inv - mu * mu;
      const double var = raw > 0.0 ? raw : 0.0;
      const double floor_sd = floor_rel * std::fabs(mu);
      const bool use = var > floor_sd * floor_sd;
      const double num = static_cast<double>(dp[i]) - mu;
      z2[0] += use ? num * num / var : 0.0;
      used[0] += use ? 1 : 0;
    }
    acc.sum_z2 += (z2[0] + z2[1]) + (z2[2] + z2[3]);
    acc.used += (used[0] + used[1]) + (used[2] + used[3]);
  } else {
    for (std::size_t i = 0; i < len; ++i) {
      if (!mk[i]) continue;
      const double xm = static_cast<double>(op[i]);
      const double mu = (sp[i] - xm) * inv;
      const double raw = (qp[i] - xm * xm) * inv - mu * mu;
      const double var = raw > 0.0 ? raw : 0.0;
      const double floor_sd = floor_rel * std::fabs(mu);
      if (var <= floor_sd * floor_sd) continue;
      const double num = static_cast<double>(dp[i]) - mu;
      acc.sum_z2 += num * num / var;
      ++acc.used;
    }
  }
}

/// Copy `take` mask bytes into a staging slice, or ones when the caller's
/// mask slice is empty (all-valid; identical arithmetic via all_valid).
void stage_mask_bytes(std::uint8_t* dst, std::span<const std::uint8_t> mask,
                      std::size_t offset, std::size_t take) {
  if (mask.empty()) {
    std::memset(dst, 1, take);
  } else {
    std::memcpy(dst, mask.data() + offset, take);
  }
}

}  // namespace

bool all_valid(std::span<const std::uint8_t> mask) {
  if (mask.empty()) return true;
  return std::memchr(mask.data(), 0, mask.size()) == nullptr;
}

std::size_t count_valid(std::span<const std::uint8_t> mask, std::size_t fallback_count) {
  if (mask.empty()) return fallback_count;
  std::size_t lanes[kLanes] = {0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + kLanes <= mask.size(); i += kLanes) {
    for (std::size_t k = 0; k < kLanes; ++k) lanes[k] += mask[i + k] ? 1 : 0;
  }
  for (; i < mask.size(); ++i) lanes[0] += mask[i] ? 1 : 0;
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void MomentAccum::merge(const MomentAccum& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count);
  const double nb = static_cast<double>(other.count);
  const double nn = na + nb;
  const double delta = other.mean - mean;
  m2 += other.m2 + delta * delta * (na * nb / nn);
  mean += delta * (nb / nn);
  min = other.min < min ? other.min : min;
  max = other.max > max ? other.max : max;
  count += other.count;
}

void CoMomentAccum::merge(const CoMomentAccum& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count);
  const double nb = static_cast<double>(other.count);
  const double nn = na + nb;
  const double f = na * nb / nn;
  const double dx = other.mean_x - mean_x;
  const double dy = other.mean_y - mean_y;
  sxx += other.sxx + dx * dx * f;
  syy += other.syy + dy * dy * f;
  sxy += other.sxy + dx * dy * f;
  mean_x += dx * (nb / nn);
  mean_y += dy * (nb / nn);
  count += other.count;
}

MomentAccum moments(std::span<const float> data, std::span<const std::uint8_t> mask) {
  return moments_impl(data, mask);
}

MomentAccum moments(std::span<const double> data, std::span<const std::uint8_t> mask) {
  return moments_impl(data, mask);
}

CoMomentAccum comoments(std::span<const float> x, std::span<const float> y,
                        std::span<const std::uint8_t> mask) {
  return comoments_impl(x, y, mask);
}

CoMomentAccum comoments(std::span<const double> x, std::span<const double> y,
                        std::span<const std::uint8_t> mask) {
  return comoments_impl(x, y, mask);
}

ErrorAccum error_norms(std::span<const float> original,
                       std::span<const float> reconstructed,
                       std::span<const std::uint8_t> mask) {
  CESM_REQUIRE(original.size() == reconstructed.size());
  CESM_REQUIRE(mask.empty() || mask.size() == original.size());
  ErrorAccum acc;
  CompensatedSum total;
  const std::size_t n = original.size();
  for (std::size_t b = 0; b < n; b += kBlock) {
    const std::size_t len = std::min(kBlock, n - b);
    error_block(original.data() + b, reconstructed.data() + b,
                mask.empty() ? nullptr : mask.data() + b, len, acc, total);
  }
  acc.sum_sq = total.value();
  return acc;
}

ZScoreAccum zscore_sums(std::span<const float> data, std::span<const float> orig,
                        std::span<const double> sum, std::span<const double> sum_sq,
                        std::span<const std::uint8_t> mask, double member_count,
                        double floor_rel) {
  const std::size_t n = data.size();
  CESM_REQUIRE(orig.size() == n && sum.size() == n && sum_sq.size() == n);
  CESM_REQUIRE(mask.empty() || mask.size() == n);
  CESM_REQUIRE(member_count >= 2.0);
  ZScoreAccum acc;
  const double inv = 1.0 / (member_count - 1.0);
  for (std::size_t b = 0; b < n; b += kBlock) {
    const std::size_t len = std::min(kBlock, n - b);
    zscore_block(data.data() + b, orig.data() + b, sum.data() + b, sum_sq.data() + b,
                 mask.empty() ? nullptr : mask.data() + b, len, inv, floor_rel, acc);
  }
  return acc;
}

void accumulate_sum_sq(std::span<const float> x, std::span<const std::uint8_t> mask,
                       std::span<double> sum, std::span<double> sum_sq) {
  const std::size_t n = x.size();
  CESM_REQUIRE(sum.size() == n && sum_sq.size() == n);
  CESM_REQUIRE(mask.empty() || mask.size() == n);
  for (std::size_t b = 0; b < n; b += kBlock) {
    const std::size_t len = std::min(kBlock, n - b);
    const float* xp = x.data() + b;
    double* sp = sum.data() + b;
    double* qp = sum_sq.data() + b;
    if (mask.empty() || all_valid(mask.subspan(b, len))) {
      for (std::size_t i = 0; i < len; ++i) {
        const double v = static_cast<double>(xp[i]);
        sp[i] += v;
        qp[i] += v * v;
      }
    } else {
      const std::uint8_t* mk = mask.data() + b;
      for (std::size_t i = 0; i < len; ++i) {
        if (!mk[i]) continue;
        const double v = static_cast<double>(xp[i]);
        sp[i] += v;
        qp[i] += v * v;
      }
    }
  }
}

void update_extremes(std::span<const float> x, std::span<const std::uint8_t> mask,
                     std::uint32_t m, std::span<float> max1, std::span<float> max2,
                     std::span<std::uint32_t> argmax, std::span<float> min1,
                     std::span<float> min2, std::span<std::uint32_t> argmin) {
  const std::size_t n = x.size();
  CESM_REQUIRE(max1.size() == n && max2.size() == n && argmax.size() == n);
  CESM_REQUIRE(min1.size() == n && min2.size() == n && argmin.size() == n);
  CESM_REQUIRE(mask.empty() || mask.size() == n);
  for (std::size_t b = 0; b < n; b += kBlock) {
    const std::size_t len = std::min(kBlock, n - b);
    const bool dense = mask.empty() || all_valid(mask.subspan(b, len));
    const std::uint8_t* mk = mask.empty() ? nullptr : mask.data() + b;
    for (std::size_t i = 0; i < len; ++i) {
      if (!dense && !mk[i]) continue;
      const std::size_t j = b + i;
      const float v = x[j];
      if (v > max1[j]) {
        max2[j] = max1[j];
        max1[j] = v;
        argmax[j] = m;
      } else if (v > max2[j]) {
        max2[j] = v;
      }
      if (v < min1[j]) {
        min2[j] = min1[j];
        min1[j] = v;
        argmin[j] = m;
      } else if (v < min2[j]) {
        min2[j] = v;
      }
    }
  }
}

// --------------------------------------------------------------------------
// Streaming front ends. Each stages feeds into an owned kBlock buffer and
// flushes through the same block routine the one-shot kernel uses, so the
// absolute block grid — and therefore every floating-point result — is
// identical for any chunk partition of the input.

MomentStream::MomentStream(bool masked) : masked_(masked) {
  stage_.resize(kBlock);
  if (masked_) stage_mask_.resize(kBlock);
}

void MomentStream::feed(std::span<const float> data, std::span<const std::uint8_t> mask) {
  CESM_REQUIRE(mask.empty() || mask.size() == data.size());
  CESM_REQUIRE(masked_ || mask.empty());
  std::size_t i = 0;
  while (i < data.size()) {
    const std::size_t take = std::min(kBlock - staged_, data.size() - i);
    std::memcpy(stage_.data() + staged_, data.data() + i, take * sizeof(float));
    if (masked_) stage_mask_bytes(stage_mask_.data() + staged_, mask, i, take);
    staged_ += take;
    i += take;
    if (staged_ == kBlock) flush_block();
  }
}

void MomentStream::flush_block() {
  moment_block(stage_.data(), masked_ ? stage_mask_.data() : nullptr, staged_, acc_);
  staged_ = 0;
}

MomentAccum MomentStream::finish() {
  if (staged_ > 0) flush_block();
  return acc_;
}

CoMomentStream::CoMomentStream(bool masked) : masked_(masked) {
  stage_x_.resize(kBlock);
  stage_y_.resize(kBlock);
  if (masked_) stage_mask_.resize(kBlock);
}

void CoMomentStream::feed(std::span<const float> x, std::span<const float> y,
                          std::span<const std::uint8_t> mask) {
  CESM_REQUIRE(x.size() == y.size());
  CESM_REQUIRE(mask.empty() || mask.size() == x.size());
  CESM_REQUIRE(masked_ || mask.empty());
  std::size_t i = 0;
  while (i < x.size()) {
    const std::size_t take = std::min(kBlock - staged_, x.size() - i);
    std::memcpy(stage_x_.data() + staged_, x.data() + i, take * sizeof(float));
    std::memcpy(stage_y_.data() + staged_, y.data() + i, take * sizeof(float));
    if (masked_) stage_mask_bytes(stage_mask_.data() + staged_, mask, i, take);
    staged_ += take;
    i += take;
    if (staged_ == kBlock) flush_block();
  }
}

void CoMomentStream::flush_block() {
  comoment_block(stage_x_.data(), stage_y_.data(),
                 masked_ ? stage_mask_.data() : nullptr, staged_, acc_);
  staged_ = 0;
}

CoMomentAccum CoMomentStream::finish() {
  if (staged_ > 0) flush_block();
  return acc_;
}

ErrorNormStream::ErrorNormStream(bool masked) : masked_(masked) {
  stage_x_.resize(kBlock);
  stage_y_.resize(kBlock);
  if (masked_) stage_mask_.resize(kBlock);
}

void ErrorNormStream::feed(std::span<const float> original,
                           std::span<const float> reconstructed,
                           std::span<const std::uint8_t> mask) {
  CESM_REQUIRE(original.size() == reconstructed.size());
  CESM_REQUIRE(mask.empty() || mask.size() == original.size());
  CESM_REQUIRE(masked_ || mask.empty());
  std::size_t i = 0;
  while (i < original.size()) {
    const std::size_t take = std::min(kBlock - staged_, original.size() - i);
    std::memcpy(stage_x_.data() + staged_, original.data() + i, take * sizeof(float));
    std::memcpy(stage_y_.data() + staged_, reconstructed.data() + i, take * sizeof(float));
    if (masked_) stage_mask_bytes(stage_mask_.data() + staged_, mask, i, take);
    staged_ += take;
    i += take;
    if (staged_ == kBlock) flush_block();
  }
}

void ErrorNormStream::flush_block() {
  CompensatedSum total{total_.sum, total_.comp};
  error_block(stage_x_.data(), stage_y_.data(), masked_ ? stage_mask_.data() : nullptr,
              staged_, acc_, total);
  total_ = {total.sum, total.comp};
  staged_ = 0;
}

ErrorAccum ErrorNormStream::finish() {
  if (staged_ > 0) flush_block();
  acc_.sum_sq = CompensatedSum{total_.sum, total_.comp}.value();
  return acc_;
}

ZScoreStream::ZScoreStream(double member_count, double floor_rel, bool masked)
    : floor_rel_(floor_rel), masked_(masked) {
  CESM_REQUIRE(member_count >= 2.0);
  inv_ = 1.0 / (member_count - 1.0);
  stage_data_.resize(kBlock);
  stage_orig_.resize(kBlock);
  stage_sum_.resize(kBlock);
  stage_sum_sq_.resize(kBlock);
  if (masked_) stage_mask_.resize(kBlock);
}

void ZScoreStream::feed(std::span<const float> data, std::span<const float> orig,
                        std::span<const double> sum, std::span<const double> sum_sq,
                        std::span<const std::uint8_t> mask) {
  const std::size_t n = data.size();
  CESM_REQUIRE(orig.size() == n && sum.size() == n && sum_sq.size() == n);
  CESM_REQUIRE(mask.empty() || mask.size() == n);
  CESM_REQUIRE(masked_ || mask.empty());
  std::size_t i = 0;
  while (i < n) {
    const std::size_t take = std::min(kBlock - staged_, n - i);
    std::memcpy(stage_data_.data() + staged_, data.data() + i, take * sizeof(float));
    std::memcpy(stage_orig_.data() + staged_, orig.data() + i, take * sizeof(float));
    std::memcpy(stage_sum_.data() + staged_, sum.data() + i, take * sizeof(double));
    std::memcpy(stage_sum_sq_.data() + staged_, sum_sq.data() + i, take * sizeof(double));
    if (masked_) stage_mask_bytes(stage_mask_.data() + staged_, mask, i, take);
    staged_ += take;
    i += take;
    if (staged_ == kBlock) flush_block();
  }
}

void ZScoreStream::flush_block() {
  zscore_block(stage_data_.data(), stage_orig_.data(), stage_sum_.data(),
               stage_sum_sq_.data(), masked_ ? stage_mask_.data() : nullptr, staged_,
               inv_, floor_rel_, acc_);
  staged_ = 0;
}

ZScoreAccum ZScoreStream::finish() {
  if (staged_ > 0) flush_block();
  return acc_;
}

}  // namespace cesm::stats::kernels
