#pragma once
// Two-sample Kolmogorov–Smirnov test.
//
// An extension beyond the paper's §4.3 machinery: instead of only
// comparing RMSZ scores pairwise (eq. 8) and by regression (eq. 9), the
// KS test asks directly whether the reconstructed ensemble's RMSZ
// *distribution* is statistically distinguishable from the original's —
// the very phrase the paper uses to define success.

#include <span>

namespace cesm::stats {

struct KsResult {
  double statistic = 0.0;  ///< D = sup |F1(x) - F2(x)|
  double p_value = 1.0;    ///< asymptotic two-sided p-value
  [[nodiscard]] bool distinguishable(double alpha = 0.05) const { return p_value < alpha; }
};

/// Two-sample KS test. Both samples must be non-empty; ties are handled
/// by the standard step-function convention.
KsResult ks_two_sample(std::span<const double> a, std::span<const double> b);

/// Asymptotic Kolmogorov survival function Q(lambda) = P(D > lambda-ish):
/// 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
double kolmogorov_q(double lambda);

}  // namespace cesm::stats
