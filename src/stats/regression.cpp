#include "stats/regression.h"

#include <cmath>

#include "stats/tdist.h"
#include "util/error.h"

namespace cesm::stats {

double LinearFit::slope_halfwidth(double confidence) const {
  return t_critical(confidence, static_cast<double>(n - 2)) * slope_se;
}

double LinearFit::intercept_halfwidth(double confidence) const {
  return t_critical(confidence, static_cast<double>(n - 2)) * intercept_se;
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  CESM_REQUIRE(x.size() == y.size());
  CESM_REQUIRE(x.size() >= 3);
  const auto n = static_cast<double>(x.size());

  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  CESM_REQUIRE(sxx > 0.0);

  LinearFit f;
  f.n = x.size();
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;

  // Residual sum of squares via the identity SSE = Syy - b * Sxy, clamped at
  // zero against round-off for (near-)perfect fits.
  const double sse = std::max(0.0, syy - f.slope * sxy);
  const double df = n - 2.0;
  f.residual_sd = std::sqrt(sse / df);
  f.slope_se = f.residual_sd / std::sqrt(sxx);
  f.intercept_se = f.residual_sd * std::sqrt(1.0 / n + mx * mx / sxx);
  f.r2 = syy > 0.0 ? 1.0 - sse / syy : 1.0;
  return f;
}

ConfidenceRect confidence_rect(const LinearFit& fit, double confidence) {
  const double hs = fit.slope_halfwidth(confidence);
  const double hi = fit.intercept_halfwidth(confidence);
  return ConfidenceRect{
      .slope_lo = fit.slope - hs,
      .slope_hi = fit.slope + hs,
      .intercept_lo = fit.intercept - hi,
      .intercept_hi = fit.intercept + hi,
  };
}

}  // namespace cesm::stats
