#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace cesm::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  CESM_REQUIRE(bins > 0);
  CESM_REQUIRE(hi > lo);
  counts_.assign(bins, 0);
}

Histogram Histogram::from_data(std::span<const double> data, std::size_t bins) {
  CESM_REQUIRE(!data.empty());
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) hi = lo + 1.0;  // degenerate constant data
  Histogram h(lo, hi, bins);
  h.add(data);
  return h;
}

std::size_t Histogram::bin_of(double value) const {
  // Clamp before any float->integer cast: converting a NaN or a value
  // past the last bin to std::size_t is undefined behavior.
  CESM_REQUIRE(!std::isnan(value));
  if (value <= lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  const double idx = (value - lo_) / width;
  const auto i = static_cast<std::size_t>(idx);
  return std::min(i, counts_.size() - 1);
}

void Histogram::add(double value) {
  if (std::isnan(value)) {
    ++rejected_;
    return;
  }
  ++counts_[bin_of(value)];
  ++total_;
}

void Histogram::add(std::span<const double> values) {
  for (double v : values) add(v);
}

double Histogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

double Histogram::bin_center(std::size_t bin) const {
  return 0.5 * (bin_lo(bin) + bin_hi(bin));
}

std::size_t Histogram::max_count() const {
  return *std::max_element(counts_.begin(), counts_.end());
}

}  // namespace cesm::stats
