#include "stats/kstest.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"

namespace cesm::stats {

double kolmogorov_q(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_two_sample(std::span<const double> a, std::span<const double> b) {
  CESM_REQUIRE(!a.empty() && !b.empty());
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  const auto na = static_cast<double>(sa.size());
  const auto nb = static_cast<double>(sb.size());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / na - static_cast<double>(j) / nb));
  }

  KsResult r;
  r.statistic = d;
  const double n_eff = std::sqrt(na * nb / (na + nb));
  const double lambda = (n_eff + 0.12 + 0.11 / n_eff) * d;
  r.p_value = kolmogorov_q(lambda);
  return r;
}

}  // namespace cesm::stats
