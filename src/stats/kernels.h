#pragma once
// Fused, SIMD-friendly statistic kernels for the §4 hot paths.
//
// The methodology is dominated by repeated moment computations: per-variable
// min/max/mean/std (§4.1), Pearson co-moments against the 0.99999 bar
// (§4.2), pointwise error norms (eqs. 2–4) and RMSZ z-score accumulation
// (eqs. 6–8), each swept over variants x variables x members. The seed
// implementations were scalar two-pass loops with a per-element mask
// branch; at ensemble scale they are the framework's own bottleneck (the
// same effect Z-checker reports for assessment kernels).
//
// Every kernel here follows the same shape:
//
//   * single streaming pass over memory, processed in L1-resident blocks
//     (kBlock elements); moments that need a centered second pass do it
//     inside the block, so the data is read from DRAM once;
//   * block results merged with Chan's parallel update (means/M2/co-moments)
//     or Neumaier-compensated addition (plain sums), so accuracy matches or
//     beats the legacy global two-pass code on large-offset fields;
//   * the validity mask is hoisted to a per-block fast path: a block whose
//     mask slice is all-ones (the common no-fill / interior-ocean case)
//     branches once and runs the vectorizable unmasked inner loop;
//   * inner loops use independent accumulator lanes so the compiler can
//     keep them in SIMD registers without reassociating a serial reduction
//     (results stay deterministic: no -ffast-math anywhere).
//
// The `reference` namespace preserves the seed's scalar two-pass
// implementations verbatim. They are the ground truth for the ULP parity
// tests (tests/stats/test_kernels.cpp) and the "legacy" side of the
// bench_kernels microbenchmark; production code must not call them.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cesm::stats::kernels {

/// Elements per processing block: 4096 floats = 16 KiB, comfortably
/// L1-resident together with a mask slice and an output tile.
inline constexpr std::size_t kBlock = 4096;

/// True when every byte of `mask` is non-zero. Empty masks are all-valid
/// by convention. Vectorizes to wide compares; used per block to pick the
/// unmasked fast path.
bool all_valid(std::span<const std::uint8_t> mask);

/// Number of non-zero mask bytes (empty mask counts as `fallback_count`).
std::size_t count_valid(std::span<const std::uint8_t> mask,
                        std::size_t fallback_count = 0);

/// Fused (min, max, mean, M2, count) accumulator. M2 is the sum of squared
/// deviations from the mean, so variance = m2 / count.
struct MomentAccum {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double m2 = 0.0;
  std::size_t count = 0;

  /// Chan's parallel combine of two partial moment sets.
  void merge(const MomentAccum& other);
};

MomentAccum moments(std::span<const float> data,
                    std::span<const std::uint8_t> mask = {});
MomentAccum moments(std::span<const double> data,
                    std::span<const std::uint8_t> mask = {});

/// Fused co-moment accumulator for Pearson/covariance: means plus centered
/// sums sxx = Σ(x-mx)², syy, sxy over valid pairs.
struct CoMomentAccum {
  double mean_x = 0.0;
  double mean_y = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
  std::size_t count = 0;

  void merge(const CoMomentAccum& other);
};

CoMomentAccum comoments(std::span<const float> x, std::span<const float> y,
                        std::span<const std::uint8_t> mask = {});
CoMomentAccum comoments(std::span<const double> x, std::span<const double> y,
                        std::span<const std::uint8_t> mask = {});

/// Pointwise error norms between an original and a reconstruction:
/// compensated Σe², max |e|, valid-point count (eqs. 2–3 numerators).
struct ErrorAccum {
  double sum_sq = 0.0;
  double max_abs = 0.0;
  std::size_t count = 0;
};

ErrorAccum error_norms(std::span<const float> original,
                       std::span<const float> reconstructed,
                       std::span<const std::uint8_t> mask = {});

/// Leave-one-out z-score sums for RMSZ (eqs. 6–7). For each valid point the
/// sub-ensemble {E \ m} mean/variance are recovered from the per-point
/// sufficient statistics `sum`/`sum_sq` by removing `orig[i]`; points whose
/// spread is degenerate (sd <= floor_rel * |mu|) are skipped. `data` is the
/// candidate standing in for member m (the original or a reconstruction).
struct ZScoreAccum {
  double sum_z2 = 0.0;
  std::size_t used = 0;
};

ZScoreAccum zscore_sums(std::span<const float> data, std::span<const float> orig,
                        std::span<const double> sum, std::span<const double> sum_sq,
                        std::span<const std::uint8_t> mask, double member_count,
                        double floor_rel);

/// Ensemble sufficient-statistics pass: sum[i] += x[i], sum_sq[i] += x[i]²
/// over valid points, with the mask branch hoisted per block.
void accumulate_sum_sq(std::span<const float> x, std::span<const std::uint8_t> mask,
                       std::span<double> sum, std::span<double> sum_sq);

/// Per-point extreme tracking with runners-up (the E_nmax leave-one-out
/// machinery): member m's values update max1/max2/argmax and min1/min2/
/// argmin in place. Mask hoisted per block; the runner-up update itself is
/// inherently branchy and stays scalar.
void update_extremes(std::span<const float> x, std::span<const std::uint8_t> mask,
                     std::uint32_t m, std::span<float> max1, std::span<float> max2,
                     std::span<std::uint32_t> argmax, std::span<float> min1,
                     std::span<float> min2, std::span<std::uint32_t> argmin);

// ---------------------------------------------------------------------------
// Resumable streaming front ends for the kernels above.
//
// The out-of-core pipeline feeds each kernel one chunk at a time, and the
// chunk partition is whatever the I/O layer chose — it rarely lands on
// kBlock boundaries. A naive "run the one-shot kernel per chunk and merge"
// would change the block decomposition and therefore the floating-point
// result. Each stream below instead re-aligns arbitrary feeds to the same
// absolute kBlock grid the one-shot kernel uses: inputs are staged into an
// owned kBlock buffer and processed by the *identical* per-block routine
// the one-shot kernel calls, so for any partition of the input —
// 1-element tails included — the finished accumulator is bit-for-bit the
// one-shot result.
//
// Contract shared by all four streams: feeds must cover the logical array
// in order from element 0 with no gaps or overlaps; a stream constructed
// masked receives a mask slice with every feed (an empty mask slice means
// "all valid" and stages ones — by the all_valid fast path that is
// arithmetically identical to an absent mask); finish() flushes the tail
// block and returns the accumulator. Streams are single-use.

/// Streaming `moments` (min/max/mean/M2/count).
class MomentStream {
 public:
  explicit MomentStream(bool masked = false);
  void feed(std::span<const float> data, std::span<const std::uint8_t> mask = {});
  [[nodiscard]] MomentAccum finish();

 private:
  void flush_block();

  MomentAccum acc_;
  std::vector<float> stage_;
  std::vector<std::uint8_t> stage_mask_;
  std::size_t staged_ = 0;
  bool masked_ = false;
};

/// Streaming `comoments` (Pearson sufficient statistics).
class CoMomentStream {
 public:
  explicit CoMomentStream(bool masked = false);
  void feed(std::span<const float> x, std::span<const float> y,
            std::span<const std::uint8_t> mask = {});
  [[nodiscard]] CoMomentAccum finish();

 private:
  void flush_block();

  CoMomentAccum acc_;
  std::vector<float> stage_x_;
  std::vector<float> stage_y_;
  std::vector<std::uint8_t> stage_mask_;
  std::size_t staged_ = 0;
  bool masked_ = false;
};

/// Streaming `error_norms` (compensated Σe², max |e|, count).
class ErrorNormStream {
 public:
  explicit ErrorNormStream(bool masked = false);
  void feed(std::span<const float> original, std::span<const float> reconstructed,
            std::span<const std::uint8_t> mask = {});
  [[nodiscard]] ErrorAccum finish();

 private:
  struct Comp {  // mirrors the kernel's Neumaier carry (sum, comp)
    double sum = 0.0;
    double comp = 0.0;
  };
  void flush_block();

  ErrorAccum acc_;
  Comp total_;
  std::vector<float> stage_x_;
  std::vector<float> stage_y_;
  std::vector<std::uint8_t> stage_mask_;
  std::size_t staged_ = 0;
  bool masked_ = false;
};

/// Streaming `zscore_sums`. The per-point sufficient statistics sum/sum_sq
/// slices ride along with each feed (they are per-point arrays, sliced by
/// the same chunk bounds as the data).
class ZScoreStream {
 public:
  ZScoreStream(double member_count, double floor_rel, bool masked = false);
  void feed(std::span<const float> data, std::span<const float> orig,
            std::span<const double> sum, std::span<const double> sum_sq,
            std::span<const std::uint8_t> mask = {});
  [[nodiscard]] ZScoreAccum finish();

 private:
  void flush_block();

  ZScoreAccum acc_;
  double inv_ = 0.0;
  double floor_rel_ = 0.0;
  std::vector<float> stage_data_;
  std::vector<float> stage_orig_;
  std::vector<double> stage_sum_;
  std::vector<double> stage_sum_sq_;
  std::vector<std::uint8_t> stage_mask_;
  std::size_t staged_ = 0;
  bool masked_ = false;
};

// ---------------------------------------------------------------------------
// Legacy scalar two-pass implementations (the seed's exact algorithms).
// Parity-test ground truth and bench_kernels' "legacy" side only.
namespace reference {

struct TwoPassSummary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double m2 = 0.0;  ///< Σ(x - mean)² from the second pass
  std::size_t count = 0;
};

TwoPassSummary summarize_two_pass(std::span<const float> data,
                                  std::span<const std::uint8_t> mask = {});

CoMomentAccum comoments_two_pass(std::span<const float> x, std::span<const float> y,
                                 std::span<const std::uint8_t> mask = {});

ErrorAccum error_norms_scalar(std::span<const float> original,
                              std::span<const float> reconstructed,
                              std::span<const std::uint8_t> mask = {});

ZScoreAccum zscore_sums_scalar(std::span<const float> data, std::span<const float> orig,
                               std::span<const double> sum,
                               std::span<const double> sum_sq,
                               std::span<const std::uint8_t> mask, double member_count,
                               double floor_rel);

}  // namespace reference

}  // namespace cesm::stats::kernels
