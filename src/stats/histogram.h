#pragma once
// Uniform-bin histogram (paper Figure 2 renders the 101-member RMSZ
// distribution as a frequency histogram).

#include <cstddef>
#include <span>
#include <vector>

namespace cesm::stats {

/// Fixed-range uniform histogram. Finite values outside [lo, hi]
/// (including ±inf) clamp into the first/last bin so a distribution plus
/// a handful of outlier markers can share one set of axes, as in the
/// paper's ensemble plots. NaN has no meaningful bin: add() routes it to
/// a counted rejected() slot, and bin_of() throws InvalidArgument.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Convenience: span the data range exactly, with `bins` bins.
  static Histogram from_data(std::span<const double> data, std::size_t bins);

  void add(double value);
  void add(std::span<const double> values);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const { return total_; }
  /// NaN inputs seen by add(); never counted in any bin or in total().
  [[nodiscard]] std::size_t rejected() const { return rejected_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  [[nodiscard]] double bin_center(std::size_t bin) const;
  [[nodiscard]] std::size_t max_count() const;

  /// Bin index a value falls into (after clamping). Throws
  /// InvalidArgument for NaN, which belongs to no bin.
  [[nodiscard]] std::size_t bin_of(double value) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace cesm::stats
