#pragma once
// Simple (ordinary least squares) linear regression with parameter
// standard errors and confidence intervals.
//
// Paper §4.3: for each variable, the 101 RMSZ scores of the reconstructed
// ensemble Ẽ are regressed on those of the original ensemble E. An unbiased
// reconstruction yields slope 1 / intercept 0; the 95 % confidence region
// of (slope, intercept) is rendered as a rectangle in Figure 4 and drives
// the acceptance criterion |s_I - s_WC| <= 0.05 (eq. 9).

#include <span>

namespace cesm::stats {

/// Result of fitting y = slope * x + intercept by least squares.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double slope_se = 0.0;       ///< standard error of the slope
  double intercept_se = 0.0;   ///< standard error of the intercept
  double residual_sd = 0.0;    ///< sqrt(SSE / (n - 2))
  double r2 = 0.0;             ///< coefficient of determination
  std::size_t n = 0;

  /// Half-width of the two-sided confidence interval for the slope.
  [[nodiscard]] double slope_halfwidth(double confidence) const;
  /// Half-width of the two-sided confidence interval for the intercept.
  [[nodiscard]] double intercept_halfwidth(double confidence) const;
};

/// Axis-aligned 95 %-style confidence rectangle in (slope, intercept)
/// space — exactly what Figure 4 draws per compression method.
struct ConfidenceRect {
  double slope_lo = 0.0, slope_hi = 0.0;
  double intercept_lo = 0.0, intercept_hi = 0.0;

  [[nodiscard]] bool contains(double slope, double intercept) const {
    return slope >= slope_lo && slope <= slope_hi &&
           intercept >= intercept_lo && intercept <= intercept_hi;
  }
};

/// Fit y on x. Requires n >= 3 (standard errors need n - 2 > 0) and
/// non-constant x.
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Confidence rectangle for a fit at the given confidence level.
ConfidenceRect confidence_rect(const LinearFit& fit, double confidence);

}  // namespace cesm::stats
