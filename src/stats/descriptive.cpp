#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "stats/kernels.h"
#include "util/error.h"

namespace cesm::stats {

namespace {

// Fused single-pass kernel (stats/kernels.h): blocked min/max/mean/M2 with
// Chan merging keeps the two-pass code's resistance to catastrophic
// cancellation on large-offset fields (e.g. Z3) while reading the data
// from memory once.
template <typename T>
Summary summarize_impl(std::span<const T> data, std::span<const std::uint8_t> mask) {
  return summary_from(kernels::moments(data, mask));
}

}  // namespace

Summary summary_from(const kernels::MomentAccum& a) {
  if (a.count == 0) return Summary{};
  Summary s;
  s.min = a.min;
  s.max = a.max;
  s.mean = a.mean;
  s.stddev = std::sqrt(a.m2 / static_cast<double>(a.count));
  s.count = a.count;
  return s;
}

Summary summarize(std::span<const float> data, std::span<const std::uint8_t> mask) {
  return summarize_impl(data, mask);
}

Summary summarize(std::span<const double> data, std::span<const std::uint8_t> mask) {
  return summarize_impl(data, mask);
}

double quantile_sorted(std::span<const double> sorted, double q) {
  CESM_REQUIRE(!sorted.empty());
  CESM_REQUIRE(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

BoxSummary box_summary(std::span<const double> data) {
  CESM_REQUIRE(!data.empty());
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  BoxSummary b;
  b.lo = sorted.front();
  b.hi = sorted.back();
  b.q1 = quantile_sorted(sorted, 0.25);
  b.median = quantile_sorted(sorted, 0.50);
  b.q3 = quantile_sorted(sorted, 0.75);
  b.count = sorted.size();
  return b;
}

double mean(std::span<const float> data, std::span<const std::uint8_t> mask) {
  const Summary s = summarize(data, mask);
  return s.count ? s.mean : 0.0;
}

double weighted_mean(std::span<const float> data, std::span<const double> weights,
                     std::span<const std::uint8_t> mask) {
  CESM_REQUIRE(weights.size() == data.size());
  CESM_REQUIRE(mask.empty() || mask.size() == data.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!mask.empty() && !mask[i]) continue;
    num += weights[i] * static_cast<double>(data[i]);
    den += weights[i];
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace cesm::stats
