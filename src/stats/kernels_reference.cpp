#include "stats/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

// The seed's scalar two-pass loops, verbatim, in their own translation
// unit compiled at the project's default optimization level — exactly how
// the legacy code shipped. Keeping them out of the tuned kernels TU makes
// bench_kernels' legacy-vs-fused comparison reflect the real before/after
// rather than handing the legacy loops the fused kernels' compile flags.

namespace cesm::stats::kernels {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

namespace reference {

TwoPassSummary summarize_two_pass(std::span<const float> data,
                                  std::span<const std::uint8_t> mask) {
  CESM_REQUIRE(mask.empty() || mask.size() == data.size());
  TwoPassSummary s;
  s.min = kInf;
  s.max = -kInf;
  double sum = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!mask.empty() && !mask[i]) continue;
    const double x = static_cast<double>(data[i]);
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    sum += x;
    ++s.count;
  }
  if (s.count == 0) return TwoPassSummary{};
  s.mean = sum / static_cast<double>(s.count);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!mask.empty() && !mask[i]) continue;
    const double d = static_cast<double>(data[i]) - s.mean;
    s.m2 += d * d;
  }
  return s;
}

CoMomentAccum comoments_two_pass(std::span<const float> x, std::span<const float> y,
                                 std::span<const std::uint8_t> mask) {
  CESM_REQUIRE(x.size() == y.size());
  CESM_REQUIRE(mask.empty() || mask.size() == x.size());
  CoMomentAccum m;
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!mask.empty() && !mask[i]) continue;
    sx += static_cast<double>(x[i]);
    sy += static_cast<double>(y[i]);
    ++m.count;
  }
  if (m.count == 0) return m;
  m.mean_x = sx / static_cast<double>(m.count);
  m.mean_y = sy / static_cast<double>(m.count);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!mask.empty() && !mask[i]) continue;
    const double dx = static_cast<double>(x[i]) - m.mean_x;
    const double dy = static_cast<double>(y[i]) - m.mean_y;
    m.sxx += dx * dx;
    m.syy += dy * dy;
    m.sxy += dx * dy;
  }
  return m;
}

ErrorAccum error_norms_scalar(std::span<const float> original,
                              std::span<const float> reconstructed,
                              std::span<const std::uint8_t> mask) {
  CESM_REQUIRE(original.size() == reconstructed.size());
  CESM_REQUIRE(mask.empty() || mask.size() == original.size());
  ErrorAccum acc;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (!mask.empty() && !mask[i]) continue;
    const double e =
        static_cast<double>(original[i]) - static_cast<double>(reconstructed[i]);
    acc.sum_sq += e * e;
    acc.max_abs = std::max(acc.max_abs, std::fabs(e));
    ++acc.count;
  }
  return acc;
}

ZScoreAccum zscore_sums_scalar(std::span<const float> data, std::span<const float> orig,
                               std::span<const double> sum,
                               std::span<const double> sum_sq,
                               std::span<const std::uint8_t> mask, double member_count,
                               double floor_rel) {
  ZScoreAccum acc;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!mask.empty() && !mask[i]) continue;
    const double xm = static_cast<double>(orig[i]);
    const double mu = (sum[i] - xm) / (member_count - 1.0);
    const double var =
        std::max(0.0, (sum_sq[i] - xm * xm) / (member_count - 1.0) - mu * mu);
    const double floor_sd = floor_rel * std::fabs(mu);
    if (var <= floor_sd * floor_sd) continue;
    const double z = (static_cast<double>(data[i]) - mu) / std::sqrt(var);
    acc.sum_z2 += z * z;
    ++acc.used;
  }
  return acc;
}

}  // namespace reference

}  // namespace cesm::stats::kernels
