#pragma once
// Pearson correlation and covariance (paper eq. 5).

#include <cstdint>
#include <span>

namespace cesm::stats {

/// Population covariance cov(X, Y) over valid (unmasked) points.
double covariance(std::span<const float> x, std::span<const float> y,
                  std::span<const std::uint8_t> mask = {});

/// Pearson correlation coefficient ρ = cov(X,Y)/(σ_X σ_Y)  (paper eq. 5).
/// Returns 1.0 when either series is constant and the two series are
/// pointwise identical (perfect reconstruction of a constant field), and
/// 0.0 when one series is constant but they differ — the conservative
/// choice for the acceptance test.
double pearson(std::span<const float> x, std::span<const float> y,
               std::span<const std::uint8_t> mask = {});

double pearson(std::span<const double> x, std::span<const double> y);

}  // namespace cesm::stats
