#pragma once
// Pearson correlation and covariance (paper eq. 5).

#include <cstdint>
#include <span>

#include "stats/kernels.h"

namespace cesm::stats {

/// Population covariance cov(X, Y) over valid (unmasked) points.
double covariance(std::span<const float> x, std::span<const float> y,
                  std::span<const std::uint8_t> mask = {});

/// Pearson correlation coefficient ρ = cov(X,Y)/(σ_X σ_Y)  (paper eq. 5).
/// Effectively-constant series (spread within float32 representation noise
/// of the mean) are special-cased: returns 1.0 when both series are
/// constant at the same level to within a small relative tolerance — so a
/// faithful lossy reconstruction of a constant field is not spuriously
/// failed — and 0.0 when one series is constant but the other is not, or
/// both are constant at clearly different levels.
double pearson(std::span<const float> x, std::span<const float> y,
               std::span<const std::uint8_t> mask = {});

double pearson(std::span<const double> x, std::span<const double> y);

/// The exact finalization pearson() applies to a co-moment accumulation —
/// shared with the streaming path, which builds the accumulation
/// chunk-by-chunk (stats::CoMomentStream) instead of in one pass.
double pearson_from_accum(const kernels::CoMomentAccum& m);

}  // namespace cesm::stats
