#pragma once
// Student-t distribution: CDF and quantile function.
//
// The bias test (paper eq. 9, Figure 4) needs two-sided 95 % confidence
// intervals for the slope and intercept of a linear fit over 101 ensemble
// RMSZ pairs, i.e. t quantiles with 99 degrees of freedom. Implemented via
// the regularized incomplete beta function (continued fraction), with the
// quantile recovered by bisection — exact enough for any df ≥ 1.

namespace cesm::stats {

/// Regularized incomplete beta function I_x(a, b), x in [0, 1].
double incomplete_beta(double a, double b, double x);

/// CDF of Student's t with `df` degrees of freedom.
double t_cdf(double t, double df);

/// Quantile (inverse CDF) of Student's t: smallest t with CDF(t) >= p.
/// p must lie strictly in (0, 1).
double t_quantile(double p, double df);

/// Two-sided critical value: t such that P(|T| <= t) = confidence.
/// confidence in (0, 1), e.g. 0.95 for the paper's 95 % regions.
double t_critical(double confidence, double df);

}  // namespace cesm::stats
