#include "stats/tdist.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace cesm::stats {

namespace {

// glibc's lgamma writes the global `signgam` — a data race once workers
// evaluate t-statistics concurrently. The reentrant variant computes the
// identical value and returns the sign through an out-parameter. Declared
// here directly because strict-ANSI feature macros hide it in <math.h>.
#if defined(__GLIBC__)
extern "C" double lgamma_r(double, int*) noexcept;
double log_gamma(double x) {
  int sign = 0;  // always +1 here: every argument is positive
  return lgamma_r(x, &sign);
}
#else
double log_gamma(double x) { return std::lgamma(x); }
#endif

// Lentz's continued-fraction evaluation of the incomplete beta function
// (cf. Numerical Recipes betacf). Converges quickly for x < (a+1)/(a+b+2).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-15;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  CESM_REQUIRE(a > 0.0 && b > 0.0);
  CESM_REQUIRE(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double t_cdf(double t, double df) {
  CESM_REQUIRE(df > 0.0);
  if (!std::isfinite(t)) return t > 0 ? 1.0 : 0.0;
  const double x = df / (df + t * t);
  const double p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double t_quantile(double p, double df) {
  CESM_REQUIRE(p > 0.0 && p < 1.0);
  CESM_REQUIRE(df > 0.0);
  if (p == 0.5) return 0.0;
  // Bracket then bisect; the CDF is strictly monotone.
  double lo = -1.0, hi = 1.0;
  while (t_cdf(lo, df) > p) lo *= 2.0;
  while (t_cdf(hi, df) < p) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (hi - lo < 1e-12 * (1.0 + std::fabs(mid))) return mid;
    if (t_cdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double t_critical(double confidence, double df) {
  CESM_REQUIRE(confidence > 0.0 && confidence < 1.0);
  return t_quantile(0.5 + confidence / 2.0, df);
}

}  // namespace cesm::stats
